#include "fabric/fabric.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <vector>

namespace hcl::fabric {
namespace {

using sim::Actor;
using sim::CostModel;
using sim::Nanos;
using sim::Topology;

struct FabricTest : ::testing::Test {
  FabricTest() : fabric(Topology(2, 2), CostModel::ares()) {}
  Fabric fabric;
};

TEST_F(FabricTest, PutMovesBytesAndAdvancesClock) {
  Actor client(0, 0, 1);
  std::vector<char> src(4096, 'x');
  std::vector<char> dst(4096, 0);
  fabric.put(client, /*target=*/1, dst.data(), src.data(), src.size());
  EXPECT_EQ(std::memcmp(src.data(), dst.data(), src.size()), 0);
  // latency + wire + latency at minimum.
  const auto& m = fabric.model();
  EXPECT_GE(client.now(), 2 * m.net_base_latency_ns + m.wire_time(4096));
}

TEST_F(FabricTest, LocalPutSkipsWire) {
  Actor client(0, 0, 1);
  char src[64] = "local";
  char dst[64] = {};
  fabric.put(client, /*target=*/0, dst, src, sizeof(src));
  EXPECT_STREQ(dst, "local");
  // No packets recorded anywhere for node-local traffic.
  EXPECT_EQ(fabric.nic(0).counters().total_packets.load(), 0);
  // Far cheaper than a remote round trip.
  EXPECT_LT(client.now(), fabric.model().net_base_latency_ns);
}

TEST_F(FabricTest, GetReadsRemoteBytes) {
  Actor client(0, 0, 1);
  char remote[32] = "remote-data";
  char local[32] = {};
  fabric.get(client, 1, local, remote, sizeof(remote));
  EXPECT_STREQ(local, "remote-data");
  EXPECT_GT(fabric.nic(1).counters().read_count.load(), 0);
}

TEST_F(FabricTest, RegisteredPutChargesBufferPrep) {
  // Small puts (eager protocol) copy through a bounce buffer at the source;
  // large puts (rendezvous) pin on the registration lane.
  Actor a(0, 0, 1), b(1, 0, 2);
  char src[4096] = {}, dst[4096];
  fabric.put(a, 1, dst, src, sizeof(src), /*registered_buffer=*/false);
  fabric.put(b, 1, dst, src, sizeof(src), /*registered_buffer=*/true);
  EXPECT_GT(b.now(), a.now());                        // bounce copy charged
  EXPECT_EQ(fabric.reg_unit(0).busy_total(), 0);      // below rendezvous size
  EXPECT_GT(fabric.mem_channels(0).busy_total(), 0);  // source-side copy

  Actor c(2, 0, 3);
  const std::size_t big =
      static_cast<std::size_t>(fabric.model().bcl_rendezvous_bytes);
  fabric.charge_put(c, 1, big, /*registered_buffer=*/true);
  EXPECT_GT(fabric.reg_unit(0).busy_total(), 0);      // dynamic pinning
}

TEST_F(FabricTest, Cas64SemanticActsOnWord) {
  Actor client(0, 0, 1);
  std::atomic<std::uint64_t> word{5};
  std::uint64_t expected = 5;
  EXPECT_TRUE(fabric.cas64(client, 1, word, expected, 9));
  EXPECT_EQ(word.load(), 9u);
  expected = 5;  // stale
  EXPECT_FALSE(fabric.cas64(client, 1, word, expected, 11));
  EXPECT_EQ(expected, 9u);  // CAS loads the current value on failure
  EXPECT_EQ(word.load(), 9u);
}

TEST_F(FabricTest, RemoteAtomicsSerializeOnNicPipeline) {
  // Two clients CASing remote words: the second serializes behind the first
  // on the NIC processing pipeline (the Fig. 1 serialization effect).
  Actor a(0, 0, 1), b(1, 0, 2);
  std::atomic<std::uint64_t> word{0};
  std::uint64_t e0 = 0, e1 = 1;
  fabric.cas64(a, 1, word, e0, 1);
  fabric.cas64(b, 1, word, e1, 2);
  const auto& m = fabric.model();
  EXPECT_EQ(a.now(), 2 * m.net_base_latency_ns + m.nic_atomic_service_ns);
  EXPECT_EQ(b.now(), 2 * m.net_base_latency_ns + 2 * m.nic_atomic_service_ns);
  EXPECT_EQ(fabric.nic(1).counters().atomic_count.load(), 2);
}

TEST_F(FabricTest, Faa64ReturnsPrevious) {
  Actor client(0, 0, 1);
  std::atomic<std::uint64_t> word{10};
  EXPECT_EQ(fabric.faa64(client, 1, word, 5), 10u);
  EXPECT_EQ(word.load(), 15u);
}

TEST_F(FabricTest, Load64ReadsValue) {
  Actor client(0, 0, 1);
  std::atomic<std::uint64_t> word{77};
  EXPECT_EQ(fabric.load64(client, 1, word), 77u);
  EXPECT_GT(client.now(), 0);
}

TEST_F(FabricTest, SendRequestReturnsArrivalAfterLatencyAndWire) {
  Actor client(0, 0, 1);
  const Nanos arrival = fabric.send_request(client, 1, 4096);
  const auto& m = fabric.model();
  EXPECT_EQ(arrival, m.net_base_latency_ns + m.wire_time(4096));
  // Client only pays injection overhead — the send is one-sided.
  EXPECT_EQ(client.now(), m.wire_overhead_ns);
  EXPECT_EQ(fabric.nic(1).counters().rpc_count.load(), 1);
}

TEST_F(FabricTest, NicBeginQueuesOnCores) {
  const Nanos t1 = fabric.nic_begin(1, 100);
  EXPECT_EQ(t1, 100 + fabric.model().nic_rpc_dispatch_ns);
}

TEST_F(FabricTest, PullResponseAdvancesPastReady) {
  Actor client(0, 0, 1);
  fabric.pull_response(client, 1, 64, /*response_ready=*/10'000);
  const auto& m = fabric.model();
  EXPECT_GE(client.now(), 10'000 + 3 * m.net_base_latency_ns + m.wire_time(64));
}

TEST_F(FabricTest, WireSaturationEmerges) {
  // 40 clients pushing 4 KB ops at one target: per-op spacing approaches
  // 40 x wire_time (closed-loop saturation), the Fig. 1 RPC-cost mechanism.
  constexpr int kClients = 40;
  constexpr int kOps = 64;
  std::vector<std::unique_ptr<Actor>> actors;
  std::vector<char> src(4096), dst(4096);
  for (int c = 0; c < kClients; ++c) actors.push_back(std::make_unique<Actor>(c, 0, c));
  std::vector<std::thread> pool;
  for (auto& a : actors) {
    pool.emplace_back([&, ap = a.get()] {
      for (int i = 0; i < kOps; ++i) fabric.put(*ap, 1, dst.data(), src.data(), 4096);
    });
  }
  for (auto& t : pool) t.join();
  Nanos max_finish = 0;
  for (auto& a : actors) max_finish = std::max(max_finish, a->now());
  const Nanos total_wire = static_cast<Nanos>(kClients) * kOps *
                           fabric.model().wire_time(4096);
  // Makespan must be at least the serialized wire time (conservation).
  EXPECT_GE(max_finish, total_wire);
  EXPECT_EQ(fabric.nic(1).counters().write_count.load(), kClients * kOps);
}

TEST_F(FabricTest, PacketsAccounted) {
  Actor client(0, 0, 1);
  char src[8192] = {}, dst[8192];
  fabric.put(client, 1, dst, src, sizeof(src));
  // 8 KB over a 4 KB MTU = 2 packets.
  EXPECT_EQ(fabric.nic(1).counters().total_packets.load(), 2);
  EXPECT_EQ(fabric.nic(1).counters().total_bytes.load(), 8192);
}

TEST_F(FabricTest, LocalCasChargesContededCost) {
  EXPECT_EQ(fabric.local_cas(0, 0), fabric.model().local_cas_ns);
  EXPECT_EQ(fabric.local_cas(0, 100, 2), 100 + 2 * fabric.model().local_cas_ns);
}

TEST_F(FabricTest, LocalWriteUsesChannels) {
  const auto& m = fabric.model();
  const Nanos t = fabric.local_write(0, 0, 1 << 20);
  EXPECT_EQ(t, m.mem_write_time(1 << 20));
  // Copies multiply the channel crossings.
  const Nanos t3 = fabric.local_write(1, 0, 1 << 20, 3);
  EXPECT_GE(t3, 3 * m.mem_write_time(1 << 20));
}

TEST_F(FabricTest, NicComputeUtilization) {
  Actor client(0, 0, 1);
  std::atomic<std::uint64_t> word{0};
  for (int i = 0; i < 100; ++i) fabric.faa64(client, 1, word, 1);
  const double u = fabric.nic_compute_utilization(1, client.now());
  EXPECT_GT(u, 0.0);
  EXPECT_LE(u, 2.0);  // atomic unit + cores can each reach 1.0
}

TEST_F(FabricTest, ResetMetricsClearsEverything) {
  Actor client(0, 0, 1);
  char src[64] = {}, dst[64];
  fabric.put(client, 1, dst, src, sizeof(src));
  fabric.reset_metrics();
  EXPECT_EQ(fabric.nic(1).counters().total_packets.load(), 0);
  EXPECT_EQ(fabric.nic(1).ingress().busy_total(), 0);
}

TEST_F(FabricTest, InvalidNodeThrows) {
  Actor client(0, 0, 1);
  char b[8];
  EXPECT_THROW(fabric.put(client, 99, b, b, 8), HclError);
}

}  // namespace
}  // namespace hcl::fabric
