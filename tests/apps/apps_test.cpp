#include "apps/genome.h"
#include "apps/isx.h"
#include "apps/meraculous.h"

#include <gtest/gtest.h>

#include <set>

namespace hcl::apps {
namespace {

using sim::CostModel;

Context::Config zero_config(int nodes, int procs) {
  Context::Config cfg;
  cfg.num_nodes = nodes;
  cfg.procs_per_node = procs;
  cfg.model = CostModel::zero();
  return cfg;
}

// ---------------- genome utilities ----------------

TEST(Genome, PackUnpackRoundTrip) {
  const std::string s = "ACGTACGTACGTACGTACGTA";  // 21 bases
  const Kmer k = pack_kmer(s.data(), 21);
  EXPECT_EQ(unpack_kmer(k, 21), s);
}

TEST(Genome, RollMatchesRepack) {
  const std::string read = "ACGTTGCAAGGTTC";
  const int k = 5;
  Kmer rolled = pack_kmer(read.data(), k);
  for (std::size_t i = static_cast<std::size_t>(k); i < read.size(); ++i) {
    rolled = roll_kmer(rolled, k, read[i]);
    EXPECT_EQ(rolled, pack_kmer(read.data() + i - k + 1, k));
  }
}

TEST(Genome, KmersOfReadCount) {
  const std::string read = "ACGTACGTAC";  // 10 bases
  EXPECT_EQ(kmers_of(read, 4).size(), 7u);
  EXPECT_EQ(kmers_of(read, 10).size(), 1u);
  EXPECT_TRUE(kmers_of(read, 11).empty());
}

TEST(Genome, DistinctKmersDiffer) {
  EXPECT_NE(pack_kmer("AAAA", 4), pack_kmer("AAAT", 4));
  EXPECT_NE(pack_kmer("AAA", 3), pack_kmer("AAAA", 4));  // sentinel keeps k
}

TEST(Genome, GeneratorIsDeterministic) {
  GenomeConfig cfg;
  cfg.reference_length = 1'000;
  cfg.read_length = 50;
  cfg.coverage = 2.0;
  auto a = generate_genome(cfg);
  auto b = generate_genome(cfg);
  EXPECT_EQ(a.reference, b.reference);
  EXPECT_EQ(a.reads, b.reads);
  EXPECT_EQ(a.reads.size(), 40u);  // coverage * ref / read_len
  for (const auto& read : a.reads) {
    EXPECT_EQ(read.size(), 50u);
    EXPECT_NE(a.reference.find(read), std::string::npos);  // error-free
  }
}

TEST(Genome, ExtensionMaskHelpers) {
  EXPECT_TRUE(unique_ext(0b0001));
  EXPECT_TRUE(unique_ext(0b1000));
  EXPECT_FALSE(unique_ext(0b0011));
  EXPECT_FALSE(unique_ext(0));
  EXPECT_EQ(ext_base(0b0100), 2);
}

// ---------------- ISx ----------------

TEST(Isx, HclVariantSortsEverything) {
  Context ctx(zero_config(4, 2));
  IsxConfig cfg;
  cfg.keys_per_rank = 2'000;
  auto result = run_isx_hcl(ctx, cfg);
  EXPECT_TRUE(result.sorted);
  EXPECT_EQ(result.total_keys, 8u * 2'000u);
}

TEST(Isx, BclVariantSortsEverything) {
  Context ctx(zero_config(4, 2));
  IsxConfig cfg;
  cfg.keys_per_rank = 2'000;
  auto result = run_isx_bcl(ctx, cfg);
  EXPECT_TRUE(result.sorted);
  EXPECT_EQ(result.total_keys, 8u * 2'000u);
}

TEST(Isx, HclBeatsBclUnderAresModel) {
  // Fig. 7a's headline: HCL's priority-queue distribution beats BCL's
  // queue + local sort.
  Context::Config cfg;
  cfg.num_nodes = 2;
  cfg.procs_per_node = 2;
  Context ctx(cfg);
  IsxConfig isx;
  isx.keys_per_rank = 1'000;
  auto hcl_result = run_isx_hcl(ctx, isx);
  auto bcl_result = run_isx_bcl(ctx, isx);
  EXPECT_TRUE(hcl_result.sorted);
  EXPECT_TRUE(bcl_result.sorted);
  EXPECT_LT(hcl_result.seconds, bcl_result.seconds);
}

// ---------------- Meraculous ----------------

GenomeConfig small_genome() {
  GenomeConfig g;
  g.reference_length = 3'000;
  g.read_length = 60;
  g.coverage = 3.0;
  g.k = 15;
  return g;
}

TEST(Meraculous, KmerCountsMatchBetweenVariants) {
  auto genome = generate_genome(small_genome());
  Context ctx(zero_config(2, 2));
  auto hcl_result = run_kmer_count_hcl(ctx, genome);
  auto bcl_result = run_kmer_count_bcl(ctx, genome);
  EXPECT_GT(hcl_result.total_kmers, 0u);
  EXPECT_EQ(hcl_result.total_kmers, bcl_result.total_kmers);
  // BCL's client-side insert can race on in-flight duplicates (a faithful
  // limitation of the baseline, see bcl/hash_map.h), so its distinct count
  // may exceed HCL's exact one by a handful of keys.
  EXPECT_GE(bcl_result.distinct_kmers, hcl_result.distinct_kmers);
  EXPECT_LE(bcl_result.distinct_kmers,
            hcl_result.distinct_kmers + hcl_result.distinct_kmers / 100 + 8);
}

TEST(Meraculous, KmerCountsAreExact) {
  // Cross-check the distributed histogram against a serial count.
  auto genome = generate_genome(small_genome());
  std::set<Kmer> serial_distinct;
  std::uint64_t serial_total = 0;
  for (const auto& read : genome.reads) {
    for (Kmer k : kmers_of(read, genome.k)) {
      serial_distinct.insert(k);
      ++serial_total;
    }
  }
  Context ctx(zero_config(2, 2));
  auto result = run_kmer_count_hcl(ctx, genome);
  EXPECT_EQ(result.total_kmers, serial_total);
  EXPECT_EQ(result.distinct_kmers, serial_distinct.size());
}

TEST(Meraculous, ContigGenerationCoversReference) {
  auto genome = generate_genome(small_genome());
  Context ctx(zero_config(2, 2));
  auto result = run_contig_hcl(ctx, genome);
  EXPECT_GT(result.contigs, 0u);
  // Contigs cover at least the distinct k-mers observed (each visited once).
  EXPECT_GT(result.total_bases, 0u);
}

TEST(Meraculous, ContigVariantsAgreeOnTotals) {
  auto genome = generate_genome(small_genome());
  Context ctx(zero_config(2, 2));
  auto hcl_result = run_contig_hcl(ctx, genome);
  auto bcl_result = run_contig_bcl(ctx, genome);
  // Walk tie-breaking differs run to run, but every distinct k-mer is
  // claimed exactly once in both, so total bases walked match.
  EXPECT_EQ(hcl_result.total_bases > 0, bcl_result.total_bases > 0);
  EXPECT_GT(hcl_result.contigs, 0u);
  EXPECT_GT(bcl_result.contigs, 0u);
}

TEST(Meraculous, HclBeatsBclOnKmerCounting) {
  // Fig. 7c: HCL 2.17x-8x faster.
  GenomeConfig g = small_genome();
  g.reference_length = 2'000;
  auto genome = generate_genome(g);
  Context::Config cfg;
  cfg.num_nodes = 2;
  cfg.procs_per_node = 2;
  Context ctx(cfg);
  auto hcl_result = run_kmer_count_hcl(ctx, genome);
  auto bcl_result = run_kmer_count_bcl(ctx, genome);
  EXPECT_LT(hcl_result.seconds, bcl_result.seconds);
}

}  // namespace
}  // namespace hcl::apps
