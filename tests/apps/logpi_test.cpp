// Tier-1 tests for the logpi inverted-index scenario (Fig. 8): posting-list
// correctness against a single-rank oracle — including duplicate-token and
// cross-partition posting appends — swept cache-on and cache-off.
#include "apps/logpi.h"

#include <gtest/gtest.h>

#include <map>

namespace hcl::apps {
namespace {

using sim::CostModel;

Context::Config zero_config(int nodes, int procs) {
  Context::Config cfg;
  cfg.num_nodes = nodes;
  cfg.procs_per_node = procs;
  cfg.model = CostModel::zero();
  return cfg;
}

LogpiConfig small_config() {
  LogpiConfig config;
  config.lines_per_rank = 32;
  config.tokens_per_line = 3;
  config.vocab = 64;  // small vocabulary: duplicate tokens are guaranteed
  config.flush_lines = 8;
  config.queries_per_rank = 8;
  config.terms_per_query = 2;
  return config;
}

// Sequential oracle: the exact index every correct variant must build, and
// the query results it implies. Reuses the deterministic generators, so any
// divergence is in the distributed plumbing, not the workload.
struct Oracle {
  std::map<std::uint64_t, Posting> index;  // token -> sorted offsets
  std::uint64_t postings = 0;
  std::uint64_t query_hits = 0;
  std::uint64_t query_checksum = 0;
};

Oracle build_oracle(const LogpiConfig& config, int ranks) {
  Oracle oracle;
  for (int r = 0; r < ranks; ++r) {
    const auto lines = detail::logpi_lines(config, r);
    const std::uint64_t base =
        static_cast<std::uint64_t>(r) * config.lines_per_rank;
    for (std::size_t i = 0; i < lines.size(); ++i) {
      for (std::uint64_t token : lines[i]) {
        oracle.index[token].push_back(base + i);
        ++oracle.postings;
      }
    }
  }
  for (int r = 0; r < ranks; ++r) {
    const auto stream = detail::logpi_queries(config, r);
    for (std::size_t q = 0; q < stream.size(); ++q) {
      std::vector<Posting> lists;
      for (std::uint64_t term : stream[q]) {
        auto it = oracle.index.find(term);
        lists.push_back(it == oracle.index.end() ? Posting{} : it->second);
      }
      const auto matched = detail::eval_query(std::move(lists), q % 2 == 0);
      oracle.query_hits += matched.size();
      oracle.query_checksum += detail::query_digest(matched);
    }
  }
  return oracle;
}

core::ContainerOptions cached_options() {
  core::ContainerOptions options;
  options.cache.mode = cache::CacheMode::kInvalidate;
  options.cache.capacity = 1024;
  return options;
}

// ---------------- deterministic workload ----------------

TEST(Logpi, GeneratorsAreDeterministicAndRankDisjoint) {
  const LogpiConfig config = small_config();
  EXPECT_EQ(detail::logpi_lines(config, 0), detail::logpi_lines(config, 0));
  EXPECT_NE(detail::logpi_lines(config, 0), detail::logpi_lines(config, 1));
  EXPECT_EQ(detail::logpi_queries(config, 2), detail::logpi_queries(config, 2));
  for (const auto& line : detail::logpi_lines(config, 3)) {
    EXPECT_EQ(line.size(), 3u);
    for (std::uint64_t token : line) EXPECT_LT(token, config.vocab);
  }
}

TEST(Logpi, EvalQueryIntersectsAndUnions) {
  // Lists arrive unsorted with duplicates; evaluation must set-normalize.
  std::vector<Posting> lists = {{5, 1, 3, 1}, {3, 5, 9}};
  EXPECT_EQ(detail::eval_query(lists, /*is_and=*/true), (Posting{3, 5}));
  EXPECT_EQ(detail::eval_query(lists, /*is_and=*/false), (Posting{1, 3, 5, 9}));
  EXPECT_TRUE(detail::eval_query({}, true).empty());
  // A missing term (empty list) annihilates an AND.
  EXPECT_TRUE(detail::eval_query({{1, 2}, {}}, true).empty());
}

// ---------------- posting-list correctness vs the oracle ----------------

class LogpiCacheSweep : public ::testing::TestWithParam<bool> {};

TEST_P(LogpiCacheSweep, SingleRankMatchesOracle) {
  const LogpiConfig config = small_config();
  const Oracle oracle = build_oracle(config, 1);
  Context ctx(zero_config(1, 1));
  const LogpiResult r = run_logpi_hcl(
      ctx, config, GetParam() ? cached_options() : core::ContainerOptions{});
  EXPECT_EQ(r.failed_ops, 0);
  EXPECT_EQ(r.postings, oracle.postings);
  EXPECT_EQ(r.distinct_tokens, oracle.index.size());
  EXPECT_EQ(r.query_hits, oracle.query_hits);
  EXPECT_EQ(r.query_checksum, oracle.query_checksum);
}

TEST_P(LogpiCacheSweep, MultiRankCrossPartitionMatchesOracle) {
  // 4 partitions across 4 nodes: hot tokens are first-inserted by one rank
  // and appended by rivals on other nodes — the cross-partition append path.
  const LogpiConfig config = small_config();
  const Oracle oracle = build_oracle(config, 8);
  Context ctx(zero_config(4, 2));
  const LogpiResult r = run_logpi_hcl(
      ctx, config, GetParam() ? cached_options() : core::ContainerOptions{});
  EXPECT_EQ(r.failed_ops, 0);
  EXPECT_EQ(r.postings, oracle.postings);
  EXPECT_EQ(r.distinct_tokens, oracle.index.size());
  EXPECT_EQ(r.query_hits, oracle.query_hits);
  EXPECT_EQ(r.query_checksum, oracle.query_checksum);
  // Every distinct token lands exactly once via insert_batch; every
  // duplicate flush chunk takes the server-side append path.
  EXPECT_EQ(r.batch_inserted, oracle.index.size());
  EXPECT_GT(r.appends, 0u);
}

INSTANTIATE_TEST_SUITE_P(CacheOnOff, LogpiCacheSweep, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "CacheOn" : "CacheOff";
                         });

// ---------------- HCL vs BCL equivalence ----------------

TEST(Logpi, BclVariantMatchesOracleAndHcl) {
  const LogpiConfig config = small_config();
  const Oracle oracle = build_oracle(config, 6);
  Context ctx(zero_config(3, 2));
  const LogpiResult h = run_logpi_hcl(ctx, config);
  const LogpiResult b = run_logpi_bcl(ctx, config);
  EXPECT_EQ(b.failed_ops, 0);
  EXPECT_EQ(b.postings, oracle.postings);
  EXPECT_EQ(b.distinct_tokens, oracle.index.size());
  EXPECT_EQ(b.query_checksum, oracle.query_checksum);
  EXPECT_EQ(h.query_checksum, b.query_checksum);
  EXPECT_EQ(h.query_hits, b.query_hits);
}

// ---------------- rebalance-armed run stays correct ----------------

TEST(Logpi, RebalanceArmedRunConvergesToOracle) {
  LogpiConfig config = small_config();
  config.lines_per_rank = 64;  // enough routed ops to trip the advisor
  const Oracle oracle = build_oracle(config, 8);
  core::ContainerOptions options;
  options.rebalance.enabled = true;
  options.rebalance.min_ops = 64;
  options.rebalance.cooldown_ops = 64;
  Context ctx(zero_config(4, 2));
  const LogpiResult r = run_logpi_hcl(ctx, config, options);
  EXPECT_EQ(r.failed_ops, 0);
  EXPECT_EQ(r.postings, oracle.postings);
  EXPECT_EQ(r.query_checksum, oracle.query_checksum);
}

}  // namespace
}  // namespace hcl::apps
