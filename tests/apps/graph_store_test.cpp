// Tier-1 tests for the graph-store scenario (Fig. 9): k-hop BFS against a
// sequential reference on a seeded random graph, transactional edge-ingest
// conservation, and HCL/BCL equivalence — swept cache-on and cache-off.
#include "apps/graph_store.h"

#include <gtest/gtest.h>

namespace hcl::apps {
namespace {

using sim::CostModel;

Context::Config zero_config(int nodes, int procs) {
  Context::Config cfg;
  cfg.num_nodes = nodes;
  cfg.procs_per_node = procs;
  cfg.model = CostModel::zero();
  return cfg;
}

GraphConfig small_config() {
  GraphConfig config;
  config.vertices = 192;
  config.avg_degree = 4.0;
  config.vertex_batch = 16;
  config.edge_push_chunk = 8;
  config.bfs_sources = 4;
  config.khop = 2;
  config.degree_samples = 16;
  return config;
}

// The reference BFS checksum the distributed traversals must reproduce.
std::uint64_t reference_bfs_checksum(const GraphConfig& config,
                                     std::uint64_t* reached_out = nullptr) {
  const auto edges = detail::graph_edges(config);
  std::uint64_t checksum = 0, reached = 0;
  for (std::uint64_t source : detail::bfs_sources(config)) {
    const auto seen = detail::khop_reference(edges, source, config.khop);
    reached += seen.size();
    checksum += detail::bfs_digest(source, seen);
  }
  if (reached_out != nullptr) *reached_out = reached;
  return checksum;
}

core::ContainerOptions cached_options() {
  core::ContainerOptions options;
  options.cache.mode = cache::CacheMode::kInvalidate;
  options.cache.capacity = 1024;
  return options;
}

// ---------------- deterministic workload ----------------

TEST(GraphStore, EdgePackingRoundTrips) {
  EXPECT_EQ(pack_edge(7, 3), pack_edge(3, 7));  // canonical undirected form
  const EdgeId e = pack_edge(123456, 42);
  EXPECT_EQ(edge_u(e), 42u);
  EXPECT_EQ(edge_v(e), 123456u);
}

TEST(GraphStore, EdgeListIsDeterministicAndSimple) {
  const GraphConfig config = small_config();
  const auto a = detail::graph_edges(config);
  EXPECT_EQ(a, detail::graph_edges(config));
  EXPECT_FALSE(a.empty());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NE(edge_u(a[i]), edge_v(a[i]));            // no self-loops
    EXPECT_LT(edge_u(a[i]), edge_v(a[i]));            // canonical
    if (i > 0) {
      EXPECT_LT(a[i - 1], a[i]);  // sorted, unique
    }
    EXPECT_LT(edge_v(a[i]), config.vertices);
  }
}

TEST(GraphStore, KhopReferenceGrowsWithDepth) {
  const GraphConfig config = small_config();
  const auto edges = detail::graph_edges(config);
  const std::uint64_t source = detail::bfs_sources(config).front();
  std::size_t prev = 0;
  for (int k = 1; k <= 3; ++k) {
    const auto seen = detail::khop_reference(edges, source, k);
    EXPECT_GE(seen.size(), prev);
    EXPECT_EQ(seen.count(source), 0u);  // source excluded from reached set
    prev = seen.size();
  }
}

// ---------------- distributed BFS vs the sequential reference ----------------

class GraphCacheSweep : public ::testing::TestWithParam<bool> {};

TEST_P(GraphCacheSweep, HclBfsMatchesSequentialReference) {
  const GraphConfig config = small_config();
  std::uint64_t expect_reached = 0;
  const std::uint64_t expect_checksum =
      reference_bfs_checksum(config, &expect_reached);
  Context ctx(zero_config(3, 2));
  const GraphResult r = run_graph_hcl(
      ctx, config, GetParam() ? cached_options() : core::ContainerOptions{});
  EXPECT_EQ(r.failed_ops, 0);
  EXPECT_EQ(r.edges, detail::graph_edges(config).size());
  // Conservation: every queued edge was moved by exactly one transaction.
  EXPECT_EQ(r.transferred, r.edges);
  EXPECT_EQ(r.bfs_reached, expect_reached);
  EXPECT_EQ(r.bfs_checksum, expect_checksum);
  // Batched drain: one commit moves up to edges_per_txn edges (plus the
  // final empty-lane probes and the vertex multi_puts).
  EXPECT_GE(r.txn_commits,
            static_cast<std::int64_t>(r.edges / config.edges_per_txn));
}

TEST_P(GraphCacheSweep, SingleRankMatchesSequentialReference) {
  const GraphConfig config = small_config();
  const std::uint64_t expect_checksum = reference_bfs_checksum(config);
  Context ctx(zero_config(1, 1));
  const GraphResult r = run_graph_hcl(
      ctx, config, GetParam() ? cached_options() : core::ContainerOptions{});
  EXPECT_EQ(r.failed_ops, 0);
  EXPECT_EQ(r.transferred, r.edges);
  EXPECT_EQ(r.bfs_checksum, expect_checksum);
}

INSTANTIATE_TEST_SUITE_P(CacheOnOff, GraphCacheSweep, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "CacheOn" : "CacheOff";
                         });

// ---------------- HCL vs BCL equivalence ----------------

TEST(GraphStore, BclVariantMatchesReferenceAndHcl) {
  const GraphConfig config = small_config();
  const std::uint64_t expect_checksum = reference_bfs_checksum(config);
  Context ctx(zero_config(3, 2));
  const GraphResult h = run_graph_hcl(ctx, config);
  const GraphResult b = run_graph_bcl(ctx, config);
  EXPECT_EQ(b.failed_ops, 0);
  EXPECT_EQ(b.bfs_checksum, expect_checksum);
  EXPECT_EQ(h.bfs_checksum, b.bfs_checksum);
  EXPECT_EQ(h.bfs_reached, b.bfs_reached);
  EXPECT_EQ(h.degree_checksum, b.degree_checksum);
}

// ---------------- multiple drainers stay conservative ----------------

TEST(GraphStore, MultipleDrainersConserveEdges) {
  GraphConfig config = small_config();
  config.drainers_per_node = 2;  // rival drainers race pops on each lane
  const std::uint64_t expect_checksum = reference_bfs_checksum(config);
  Context ctx(zero_config(2, 4));
  const GraphResult r = run_graph_hcl(ctx, config);
  EXPECT_EQ(r.transferred, r.edges);
  EXPECT_EQ(r.bfs_checksum, expect_checksum);
}

}  // namespace
}  // namespace hcl::apps
