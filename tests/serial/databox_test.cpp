#include "serial/databox.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace hcl::serial {
namespace {

TEST(DataBox, FixedSizeCompileTimeDistinction) {
  // The paper's fixed-vs-variable-length distinction is a compile-time
  // property of the boxed type.
  static_assert(DataBox<int>::kFixedSize);
  static_assert(DataBox<double>::kFixedSize);
  struct Pod {
    int a;
    float b;
  };
  static_assert(DataBox<Pod>::kFixedSize);
  static_assert(!DataBox<std::string>::kFixedSize);
  static_assert(!DataBox<std::vector<int>>::kFixedSize);
}

TEST(DataBox, RoundTripsFixed) {
  DataBox<int> box(42);
  auto bytes = box.to_bytes();
  auto back = DataBox<int>::from_bytes(std::span<const std::byte>(bytes));
  EXPECT_EQ(back.value(), 42);
}

TEST(DataBox, RoundTripsVariable) {
  DataBox<std::string> box(std::string("variable-length payload"));
  auto bytes = box.to_bytes();
  auto back = DataBox<std::string>::from_bytes(std::span<const std::byte>(bytes));
  EXPECT_EQ(back.value(), "variable-length payload");
}

TEST(DataBox, PackedSizeFixedAvoidsEncoding) {
  struct Pod {
    double a;
    int b;
  };
  DataBox<Pod> box(Pod{1.0, 2});
  EXPECT_EQ(box.packed_size(), sizeof(Pod));
  // Scalars are backend-encoded, so their wire size is the encoding's.
  DataBox<std::uint64_t> scalar(7);
  EXPECT_EQ(scalar.packed_size(), scalar.to_bytes().size());
}

TEST(DataBox, PackedSizeVariableMeasuresEncoding) {
  DataBox<std::string> box(std::string(100, 'x'));
  EXPECT_EQ(box.packed_size(), box.to_bytes().size());
  EXPECT_GE(box.packed_size(), 100u);
}

TEST(DataBox, PackedBackendChoice) {
  // Small integers shrink under the varint backend, and packed_size tracks
  // the real encoding.
  DataBox<std::uint64_t, PackedBackend> small(3);
  EXPECT_EQ(small.to_bytes().size(), 1u);
  EXPECT_EQ(small.packed_size(), 1u);
}

TEST(DataBox, TakeMovesValueOut) {
  DataBox<std::string> box(std::string("move me"));
  std::string v = box.take();
  EXPECT_EQ(v, "move me");
}

TEST(DataBox, Equality) {
  EXPECT_EQ(DataBox<int>(1), DataBox<int>(1));
  EXPECT_FALSE(DataBox<int>(1) == DataBox<int>(2));
}

struct Sensor {
  std::string id;
  std::vector<double> readings;
  template <typename Ar>
  void serialize(Ar& ar) {
    ar & id & readings;
  }
  bool operator==(const Sensor&) const = default;
};

TEST(DataBox, CustomTypeThroughBox) {
  Sensor s{"s-1", {0.1, 0.2}};
  DataBox<Sensor> box(s);
  auto bytes = box.to_bytes();
  EXPECT_EQ(DataBox<Sensor>::from_bytes(std::span<const std::byte>(bytes)).value(), s);
}

TEST(PackedSizeHelper, MatchesDataBox) {
  // Integers are backend-encoded (8 bytes under RawBackend, not sizeof).
  EXPECT_EQ(packed_size(7), pack(7).size());
  std::string s = "abc";
  EXPECT_EQ(packed_size(s), pack(s).size());
  struct Pod {
    double x;
  };
  EXPECT_EQ(packed_size(Pod{1.0}), sizeof(Pod));
}

}  // namespace
}  // namespace hcl::serial
