#include "serial/serialize.h"

#include <gtest/gtest.h>

#include "serial/arena.h"

#include <map>
#include <optional>
#include <string>
#include <tuple>
#include <unordered_map>
#include <variant>
#include <vector>

namespace hcl::serial {
namespace {

template <typename T, SerializerBackend B = RawBackend>
T round_trip(const T& v) {
  auto bytes = pack<T, B>(v);
  return unpack<T, B>(std::span<const std::byte>(bytes));
}

TEST(Serialize, Integers) {
  EXPECT_EQ(round_trip<int>(42), 42);
  EXPECT_EQ(round_trip<int>(-42), -42);
  EXPECT_EQ(round_trip<std::int64_t>(INT64_MIN), INT64_MIN);
  EXPECT_EQ(round_trip<std::int64_t>(INT64_MAX), INT64_MAX);
  EXPECT_EQ(round_trip<std::uint64_t>(~0ULL), ~0ULL);
  EXPECT_EQ(round_trip<std::uint8_t>(255), 255);
  EXPECT_EQ(round_trip<char>('x'), 'x');
}

TEST(Serialize, Bool) {
  EXPECT_EQ(round_trip<bool>(true), true);
  EXPECT_EQ(round_trip<bool>(false), false);
}

TEST(Serialize, Floats) {
  EXPECT_DOUBLE_EQ(round_trip<double>(3.14159), 3.14159);
  EXPECT_FLOAT_EQ(round_trip<float>(2.5f), 2.5f);
  EXPECT_DOUBLE_EQ(round_trip<double>(-0.0), -0.0);
}

enum class Color : std::uint8_t { kRed = 1, kBlue = 7 };

TEST(Serialize, Enum) {
  EXPECT_EQ(round_trip<Color>(Color::kBlue), Color::kBlue);
}

TEST(Serialize, Strings) {
  EXPECT_EQ(round_trip<std::string>(""), "");
  EXPECT_EQ(round_trip<std::string>("hello"), "hello");
  const std::string big(100'000, 'q');
  EXPECT_EQ(round_trip(big), big);
  // Embedded NULs survive.
  std::string nul("a\0b", 3);
  EXPECT_EQ(round_trip(nul), nul);
}

TEST(Serialize, VectorOfTrivial) {
  std::vector<int> v{1, -2, 3, 40'000};
  EXPECT_EQ(round_trip(v), v);
  EXPECT_EQ(round_trip(std::vector<int>{}), std::vector<int>{});
}

TEST(Serialize, VectorOfStrings) {
  std::vector<std::string> v{"a", "", "long string with spaces"};
  EXPECT_EQ(round_trip(v), v);
}

TEST(Serialize, VectorBool) {
  std::vector<bool> v{true, false, true, true};
  EXPECT_EQ(round_trip(v), v);
}

TEST(Serialize, NestedContainers) {
  std::vector<std::vector<std::string>> v{{"a", "b"}, {}, {"c"}};
  EXPECT_EQ(round_trip(v), v);
}

TEST(Serialize, PairAndTuple) {
  auto p = std::make_pair(std::string("k"), 7);
  EXPECT_EQ(round_trip(p), p);
  auto t = std::make_tuple(1, std::string("two"), 3.0);
  EXPECT_EQ(round_trip(t), t);
}

TEST(Serialize, PairOfIntsIsStructural) {
  // std::pair is never trivially copyable (user-provided operator=), so it
  // takes the structural path: two backend-encoded ints of 8 bytes each.
  auto bytes = pack(std::make_pair(1, 2));
  EXPECT_EQ(bytes.size(), 16u);
}

TEST(Serialize, Maps) {
  std::map<std::string, int> m{{"a", 1}, {"b", 2}};
  EXPECT_EQ(round_trip(m), m);
  std::unordered_map<int, std::string> u{{1, "x"}, {2, "y"}};
  EXPECT_EQ(round_trip(u), u);
}

TEST(Serialize, Sets) {
  std::set<int> s{3, 1, 2};
  EXPECT_EQ(round_trip(s), s);
  std::unordered_set<std::string> u{"p", "q"};
  EXPECT_EQ(round_trip(u), u);
}

TEST(Serialize, Optional) {
  EXPECT_EQ(round_trip(std::optional<std::string>{"v"}),
            std::optional<std::string>{"v"});
  EXPECT_EQ(round_trip(std::optional<std::string>{}),
            std::optional<std::string>{});
}

TEST(Serialize, Variant) {
  using V = std::variant<int, std::string, double>;
  EXPECT_EQ(round_trip(V{42}), V{42});
  EXPECT_EQ(round_trip(V{std::string("s")}), V{std::string("s")});
  EXPECT_EQ(round_trip(V{2.5}), V{2.5});
}

struct Pod {
  int a;
  double b;
  char c[8];
  bool operator==(const Pod&) const = default;
};
static_assert(is_byte_copyable_v<Pod>);

TEST(Serialize, PodFastPath) {
  Pod p{1, 2.5, "hi", };
  EXPECT_EQ(round_trip(p), p);
  EXPECT_EQ(pack(p).size(), sizeof(Pod));
}

struct Custom {
  int id = 0;
  std::string name;
  std::vector<double> samples;

  template <typename Ar>
  void serialize(Ar& ar) {
    ar & id & name & samples;
  }
  bool operator==(const Custom&) const = default;
};

TEST(Serialize, CustomMemberSerialize) {
  Custom c{7, "sensor", {1.0, 2.0, 3.0}};
  EXPECT_EQ(round_trip(c), c);
}

TEST(Serialize, CustomInsideContainers) {
  std::vector<Custom> v{{1, "a", {}}, {2, "b", {9.0}}};
  EXPECT_EQ(round_trip(v), v);
  std::map<int, Custom> m{{5, {5, "e", {0.5}}}};
  EXPECT_EQ(round_trip(m), m);
}

TEST(Serialize, PackedBackendRoundTrips) {
  Custom c{123456, "packed", {4.0}};
  EXPECT_EQ((round_trip<Custom, PackedBackend>(c)), c);
  EXPECT_EQ((round_trip<std::int64_t, PackedBackend>(-1)), -1);
  EXPECT_EQ((round_trip<std::uint64_t, PackedBackend>(~0ULL)), ~0ULL);
}

TEST(Serialize, PackedBackendIsSmallerForSmallInts) {
  const std::vector<std::uint64_t> small{1, 2, 3, 4, 5};
  // vector<uint64_t> is byte-copyable so it rides the memcpy path in both;
  // compare scalar framing instead.
  EXPECT_LT((pack<std::uint64_t, PackedBackend>(5).size()),
            (pack<std::uint64_t, RawBackend>(5).size()));
  (void)small;
}

struct Empty {
  friend bool operator==(const Empty&, const Empty&) { return true; }
};

TEST(Serialize, EmptyTypesAreZeroBytes) {
  EXPECT_EQ(pack(Empty{}).size(), 0u);
}

TEST(Serialize, EmptyTypeInTupleDoesNotClobberNeighbours) {
  // Regression: an empty element inside a tuple may share storage with a
  // real element (EBO); memcpy-deserializing it used to clobber that
  // element's bytes.
  auto t = std::make_tuple(1, 3, Empty{});
  auto bytes = pack(t);
  auto back = unpack<std::tuple<int, int, Empty>>(std::span<const std::byte>(bytes));
  EXPECT_EQ(std::get<0>(back), 1);
  EXPECT_EQ(std::get<1>(back), 3);
}

TEST(Serialize, TruncatedInputThrows) {
  auto bytes = pack(std::string("hello"));
  bytes.resize(bytes.size() - 2);
  EXPECT_THROW(unpack<std::string>(std::span<const std::byte>(bytes)), HclError);
}

TEST(Serialize, VariantBadIndexThrows) {
  using V = std::variant<int, double>;
  OutArchive out;
  out.u64(9);  // invalid index
  auto bytes = out.take();
  EXPECT_THROW(unpack<V>(std::span<const std::byte>(bytes)), HclError);
}

TEST(Serialize, ZigZag) {
  EXPECT_EQ(zigzag_decode(zigzag_encode(0)), 0);
  EXPECT_EQ(zigzag_decode(zigzag_encode(-1)), -1);
  EXPECT_EQ(zigzag_decode(zigzag_encode(INT64_MIN)), INT64_MIN);
  EXPECT_EQ(zigzag_decode(zigzag_encode(INT64_MAX)), INT64_MAX);
  EXPECT_EQ(zigzag_encode(-1), 1u);  // small negatives stay small
  EXPECT_EQ(zigzag_encode(1), 2u);
}

TEST(Archive, StreamOperators) {
  OutArchive out;
  out << 1 << std::string("two") << 3.5;
  InArchive in(std::span<const std::byte>(out.buffer()));
  int a;
  std::string b;
  double c;
  in >> a >> b >> c;
  EXPECT_EQ(a, 1);
  EXPECT_EQ(b, "two");
  EXPECT_DOUBLE_EQ(c, 3.5);
  EXPECT_TRUE(in.exhausted());
}

TEST(Archive, RemainingTracksCursor) {
  OutArchive out;
  out.u64(1);
  out.u64(2);
  InArchive in(std::span<const std::byte>(out.buffer()));
  EXPECT_EQ(in.remaining(), 16u);
  in.u64();
  EXPECT_EQ(in.remaining(), 8u);
}

// ---------------------------------------------------------------------------
// Flat (arena) archives: the zero-allocation shm fast path (DESIGN.md §5i)
// ---------------------------------------------------------------------------

TEST(FlatArchive, RoundTripsThroughCallerBuffer) {
  std::byte arena[256];
  FlatOutArchive out(arena);
  save(out, 42);
  save(out, std::string("ring"));
  save(out, std::vector<double>{1.5, 2.5});
  ASSERT_TRUE(out.ok());
  // Flat bytes are identical to the heap archive's — the reader cannot tell.
  InArchive in(out.written());
  int a;
  std::string b;
  std::vector<double> c;
  load(in, a);
  load(in, b);
  load(in, c);
  EXPECT_EQ(a, 42);
  EXPECT_EQ(b, "ring");
  EXPECT_EQ(c, (std::vector<double>{1.5, 2.5}));
  EXPECT_TRUE(in.exhausted());
}

TEST(FlatArchive, OverflowFlagsInsteadOfGrowing) {
  std::byte arena[8];
  FlatOutArchive out(arena);
  save(out, std::string("this string does not fit in eight bytes"));
  EXPECT_FALSE(out.ok());
  // Writes after overflow are swallowed; size never passes the capacity.
  save(out, 7);
  EXPECT_FALSE(out.ok());
  EXPECT_LE(out.size(), sizeof(arena));
}

TEST(FlatArchive, PackedBackendWritesVarints) {
  std::byte arena[64];
  PackedFlatOutArchive out(arena);
  out.u64(5);  // one varint byte, vs 8 fixed bytes on the raw backend
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.size(), 1u);
  PackedInArchive in(out.written());
  EXPECT_EQ(in.u64(), 5u);
}

TEST(FlatArchive, PackedPutU64BoundsChecks) {
  std::byte buf[16];
  std::byte* cursor = buf;
  EXPECT_TRUE(PackedBackend::put_u64(cursor, buf + sizeof(buf), 300));
  EXPECT_EQ(cursor - buf, 2);  // 300 needs two varint bytes
  std::byte tiny[1];
  std::byte* c2 = tiny;
  EXPECT_FALSE(PackedBackend::put_u64(c2, tiny + 1, ~0ULL));  // 10 bytes
  EXPECT_EQ(c2, tiny);  // a failed put leaves the cursor untouched
}

}  // namespace
}  // namespace hcl::serial
