// Property-based sweeps (TEST_P) across the stack: invariants that must
// hold for every parameter combination, not just hand-picked cases.
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "common/rng.h"
#include "core/hcl.h"
#include "lf/cuckoo_map.h"
#include "lf/skiplist_map.h"
#include "serial/serialize.h"
#include "txn/txn.h"

namespace hcl {
namespace {

// ---------------------------------------------------------------------------
// Serialization: random structured values round-trip under every backend and
// payload size.
// ---------------------------------------------------------------------------

struct WireCase {
  std::size_t string_len;
  std::size_t vector_len;
  std::uint64_t seed;
};

class SerializationRoundTrip : public ::testing::TestWithParam<WireCase> {};

struct Nested {
  std::int64_t id = 0;
  std::string name;
  std::vector<double> samples;
  std::map<std::string, std::uint32_t> tags;

  template <typename Ar>
  void serialize(Ar& ar) {
    ar & id & name & samples & tags;
  }
  bool operator==(const Nested&) const = default;
};

TEST_P(SerializationRoundTrip, RawAndPackedAgree) {
  const auto& param = GetParam();
  Rng rng(param.seed);
  Nested value;
  value.id = static_cast<std::int64_t>(rng.next()) - (1LL << 62);
  value.name = rng.next_string(param.string_len);
  value.samples.resize(param.vector_len);
  for (auto& s : value.samples) s = rng.next_double() * 1e9;
  for (std::size_t i = 0; i < param.vector_len % 7; ++i) {
    value.tags[rng.next_string(4)] = static_cast<std::uint32_t>(rng.next());
  }

  auto raw = serial::pack<Nested, serial::RawBackend>(value);
  auto packed = serial::pack<Nested, serial::PackedBackend>(value);
  EXPECT_EQ((serial::unpack<Nested, serial::RawBackend>(raw)), value);
  EXPECT_EQ((serial::unpack<Nested, serial::PackedBackend>(packed)), value);
  // Truncating any prefix must never produce a silent wrong value: it either
  // throws or the full decode above already proved integrity.
  if (raw.size() > 4) {
    auto cut = raw;
    cut.resize(cut.size() / 2);
    EXPECT_THROW(
        (serial::unpack<Nested, serial::RawBackend>(std::span<const std::byte>(cut))),
        HclError);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SerializationRoundTrip,
    ::testing::Values(WireCase{0, 0, 1}, WireCase{1, 1, 2}, WireCase{16, 8, 3},
                      WireCase{255, 64, 4}, WireCase{4096, 1000, 5},
                      WireCase{100'000, 0, 6}, WireCase{7, 4096, 7}));

// ---------------------------------------------------------------------------
// CuckooMap: under any (threads, initial buckets), N disjoint inserts all
// land, all are findable, and size is exact.
// ---------------------------------------------------------------------------

class CuckooSweep
    : public ::testing::TestWithParam<std::tuple<int, std::size_t>> {};

TEST_P(CuckooSweep, AllInsertsLandAndAreFound) {
  const auto [threads, buckets] = GetParam();
  lf::CuckooMap<std::uint64_t, std::uint64_t> map(buckets);
  constexpr std::uint64_t kPerThread = 4'000;
  std::vector<std::thread> pool;
  for (int t = 0; t < threads; ++t) {
    pool.emplace_back([&map, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        const std::uint64_t k = static_cast<std::uint64_t>(t) * kPerThread + i;
        ASSERT_TRUE(map.insert(k, k ^ 0xABCD));
      }
    });
  }
  for (auto& th : pool) th.join();
  EXPECT_EQ(map.size(), static_cast<std::size_t>(threads) * kPerThread);
  for (std::uint64_t k = 0;
       k < static_cast<std::uint64_t>(threads) * kPerThread; k += 37) {
    std::uint64_t v = 0;
    ASSERT_TRUE(map.find(k, &v));
    EXPECT_EQ(v, k ^ 0xABCD);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, CuckooSweep,
                         ::testing::Combine(::testing::Values(1, 2, 4, 8),
                                            ::testing::Values(2u, 128u, 8192u)));

// ---------------------------------------------------------------------------
// SkipListMap: after any interleaving of inserts and erases, iteration is
// strictly ordered and matches a reference std::map.
// ---------------------------------------------------------------------------

class SkipListSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SkipListSweep, MatchesReferenceModel) {
  Rng rng(GetParam());
  lf::SkipListMap<int, int> list;
  std::map<int, int> reference;
  for (int op = 0; op < 20'000; ++op) {
    const int key = static_cast<int>(rng.next_below(500));
    if ((rng.next() & 3) != 0) {
      const int value = static_cast<int>(rng.next());
      if (reference.emplace(key, value).second) {
        EXPECT_TRUE(list.insert(key, value));
      } else {
        EXPECT_FALSE(list.insert(key, value));
      }
    } else {
      EXPECT_EQ(list.erase(key), reference.erase(key) > 0);
    }
  }
  std::vector<std::pair<int, int>> got;
  list.for_each([&](const int& k, const int& v) { got.emplace_back(k, v); });
  std::vector<std::pair<int, int>> expected(reference.begin(), reference.end());
  EXPECT_EQ(got, expected);
}

INSTANTIATE_TEST_SUITE_P(Sweep, SkipListSweep,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u));

// ---------------------------------------------------------------------------
// Distributed containers: for every topology shape, the SPMD
// insert-find-erase contract holds and sizes are exact.
// ---------------------------------------------------------------------------

struct TopoCase {
  int nodes;
  int procs;
  int partitions;  // -1 = default (one per node)
};

class ContainerTopologySweep : public ::testing::TestWithParam<TopoCase> {};

TEST_P(ContainerTopologySweep, UnorderedMapContract) {
  const auto& param = GetParam();
  Context::Config cfg;
  cfg.num_nodes = param.nodes;
  cfg.procs_per_node = param.procs;
  cfg.model = sim::CostModel::zero();
  Context ctx(cfg);
  core::ContainerOptions options;
  options.num_partitions = param.partitions;
  unordered_map<std::uint64_t, std::uint64_t> map(ctx, options);

  constexpr int kPerRank = 64;
  ctx.run([&](sim::Actor& self) {
    for (int i = 0; i < kPerRank; ++i) {
      const auto k = static_cast<std::uint64_t>(self.rank()) * kPerRank + i;
      ASSERT_TRUE(map.insert(k, k * 2 + 1));
    }
  });
  const auto ranks = static_cast<std::size_t>(ctx.topology().num_ranks());
  EXPECT_EQ(map.size(), ranks * kPerRank);

  ctx.run([&](sim::Actor& self) {
    // Read a shifted rank's keys (forces a mix of local and remote).
    const int other = (self.rank() + 1) % ctx.topology().num_ranks();
    for (int i = 0; i < kPerRank; ++i) {
      const auto k = static_cast<std::uint64_t>(other) * kPerRank + i;
      std::uint64_t v = 0;
      ASSERT_TRUE(map.find(k, &v));
      EXPECT_EQ(v, k * 2 + 1);
    }
  });
  // Erase own even keys — a separate phase, so reads above never race with
  // a neighbour's deletions.
  ctx.run([&](sim::Actor& self) {
    for (int i = 0; i < kPerRank; i += 2) {
      const auto k = static_cast<std::uint64_t>(self.rank()) * kPerRank + i;
      ASSERT_TRUE(map.erase(k));
    }
  });
  EXPECT_EQ(map.size(), ranks * kPerRank / 2);
}

TEST_P(ContainerTopologySweep, QueueConservation) {
  const auto& param = GetParam();
  Context::Config cfg;
  cfg.num_nodes = param.nodes;
  cfg.procs_per_node = param.procs;
  cfg.model = sim::CostModel::zero();
  Context ctx(cfg);
  queue<std::uint64_t> q(ctx);

  constexpr int kPerRank = 50;
  std::atomic<std::uint64_t> pushed_sum{0}, popped_sum{0};
  std::atomic<std::uint64_t> popped_count{0};
  ctx.run([&](sim::Actor& self) {
    for (int i = 0; i < kPerRank; ++i) {
      const auto v = static_cast<std::uint64_t>(self.rank()) * kPerRank + i;
      q.push(v);
      pushed_sum.fetch_add(v);
    }
    std::uint64_t out;
    for (int i = 0; i < kPerRank / 2 && q.pop(&out); ++i) {
      popped_sum.fetch_add(out);
      popped_count.fetch_add(1);
    }
  });
  // Drain the rest; totals must balance exactly.
  ctx.run_one(0, [&](sim::Actor&) {
    std::uint64_t out;
    while (q.pop(&out)) {
      popped_sum.fetch_add(out);
      popped_count.fetch_add(1);
    }
  });
  EXPECT_EQ(popped_count.load(),
            static_cast<std::uint64_t>(ctx.topology().num_ranks()) * kPerRank);
  EXPECT_EQ(pushed_sum.load(), popped_sum.load());
}

TEST_P(ContainerTopologySweep, PriorityQueueGlobalOrder) {
  const auto& param = GetParam();
  Context::Config cfg;
  cfg.num_nodes = param.nodes;
  cfg.procs_per_node = param.procs;
  cfg.model = sim::CostModel::zero();
  Context ctx(cfg);
  priority_queue<std::uint64_t> pq(ctx);

  constexpr int kPerRank = 50;
  ctx.run([&](sim::Actor& self) {
    Rng rng(static_cast<std::uint64_t>(self.rank()) + 1);
    for (int i = 0; i < kPerRank; ++i) pq.push(rng.next_below(1'000'000));
  });
  ctx.run_one(0, [&](sim::Actor&) {
    std::uint64_t prev = 0, cur = 0;
    std::size_t n = 0;
    while (pq.pop(&cur)) {
      EXPECT_GE(cur, prev);
      prev = cur;
      ++n;
    }
    EXPECT_EQ(n, static_cast<std::size_t>(ctx.topology().num_ranks()) * kPerRank);
  });
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ContainerTopologySweep,
    ::testing::Values(TopoCase{1, 1, -1}, TopoCase{1, 8, -1},
                      TopoCase{2, 2, -1}, TopoCase{4, 4, -1},
                      TopoCase{8, 2, -1}, TopoCase{4, 4, 2},
                      TopoCase{3, 5, 7}));

// ---------------------------------------------------------------------------
// Fault tolerance: under a seeded mix of injected drops, delays, duplicated
// requests, handler throws, and transient NACKs, every container op must
// resolve to a definite outcome (success or a well-formed HclError — never a
// hang, never corruption), and after repairing the reported failures the map
// is exactly the intended set.
// ---------------------------------------------------------------------------

class FaultSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FaultSweep, MapStaysConsistentUnderInjectedFaults) {
  auto plan = std::make_shared<fabric::FaultPlan>(GetParam());
  fabric::FaultProbabilities p;
  p.drop = 0.02;
  p.delay = 0.05;
  p.delay_ns = 30 * sim::kMicrosecond;
  p.throw_handler = 0.02;
  p.unavailable = 0.03;
  p.duplicate = 0.02;
  plan->set(fabric::OpClass::kRpc, p);

  Context::Config cfg;
  cfg.num_nodes = 4;
  cfg.procs_per_node = 4;
  cfg.model = sim::CostModel::zero();
  cfg.rpc_options.timeout_ns = 2 * sim::kMillisecond;
  cfg.rpc_options.max_retries = 4;
  cfg.fault_plan = plan;
  Context ctx(cfg);
  unordered_map<std::uint64_t, std::uint64_t> map(ctx);

  constexpr int kPerRank = 128;
  const auto ranks = static_cast<std::size_t>(ctx.topology().num_ranks());
  std::vector<std::vector<std::uint64_t>> failed(ranks);

  ctx.run([&](sim::Actor& self) {
    for (int i = 0; i < kPerRank; ++i) {
      const auto k = static_cast<std::uint64_t>(self.rank()) * kPerRank + i;
      try {
        // Retries absorb transient faults; duplicate delivery may make a
        // landed insert report false (the discarded twin got there first) —
        // either way the key is in.
        (void)map.insert(k, k ^ 0xF00D);
      } catch (const HclError& e) {
        // What the retry policy cannot absorb must surface as one of the
        // definite terminal codes — anything else is a protocol bug.
        ASSERT_TRUE(e.code() == StatusCode::kInternal ||
                    e.code() == StatusCode::kDeadlineExceeded ||
                    e.code() == StatusCode::kUnavailable)
            << "unexpected terminal code: " << e.what();
        failed[static_cast<std::size_t>(self.rank())].push_back(k);
      }
    }
  });

  // Repair with faults cleared: upsert covers both "never executed" (dropped)
  // and "executed but reported late" (deadline passed after side effects).
  ctx.set_fault_plan(nullptr);
  ctx.run([&](sim::Actor& self) {
    for (const auto k : failed[static_cast<std::size_t>(self.rank())]) {
      (void)map.upsert(k, k ^ 0xF00D);
    }
  });

  EXPECT_EQ(map.size(), ranks * kPerRank);
  ctx.run([&](sim::Actor& self) {
    const int other = (self.rank() + 1) % ctx.topology().num_ranks();
    for (int i = 0; i < kPerRank; ++i) {
      const auto k = static_cast<std::uint64_t>(other) * kPerRank + i;
      std::uint64_t v = 0;
      ASSERT_TRUE(map.find(k, &v));
      EXPECT_EQ(v, k ^ 0xF00D);
    }
  });
  EXPECT_GT(plan->counters().total(), 0) << "fault plan never fired";
}

INSTANTIATE_TEST_SUITE_P(Sweep, FaultSweep,
                         ::testing::Values(101u, 202u, 303u));

// ---------------------------------------------------------------------------
// Batched-vs-scalar equivalence: the same seeded op stream applied through
// the coalesced bulk APIs (insert_batch/find_batch/erase_batch, push_batch)
// and one-at-a-time must produce identical per-op results and identical
// final state, for every topology shape / partition count / flush policy.
// Coalescing is a transport optimization — it must never be observable.
// ---------------------------------------------------------------------------

struct BatchEquivCase {
  int nodes;
  int procs;
  int partitions;       // -1 = default (one per node)
  std::size_t max_ops;  // bundle flush threshold under test
  std::uint64_t seed;
};

class BatchedScalarEquivalence : public ::testing::TestWithParam<BatchEquivCase> {};

TEST_P(BatchedScalarEquivalence, MapBulkOpsMatchScalarOps) {
  const auto& param = GetParam();
  Context::Config cfg;
  cfg.num_nodes = param.nodes;
  cfg.procs_per_node = param.procs;
  cfg.model = sim::CostModel::zero();
  Context scalar_ctx(cfg);
  Context batched_ctx(cfg);

  core::ContainerOptions scalar_opts;
  scalar_opts.num_partitions = param.partitions;
  core::ContainerOptions batched_opts = scalar_opts;
  batched_opts.batch.max_ops = param.max_ops;
  batched_opts.batch.max_bytes = 1 << 20;
  batched_opts.batch.max_delay_ns = 0;
  unordered_map<std::uint64_t, std::uint64_t> scalar_map(scalar_ctx, scalar_opts);
  unordered_map<std::uint64_t, std::uint64_t> batched_map(batched_ctx, batched_opts);

  constexpr int kPerRank = 96;
  const auto ranks = static_cast<std::size_t>(scalar_ctx.topology().num_ranks());
  const std::uint64_t seed = param.seed;
  auto key_of = [](int rank, int i) {
    return static_cast<std::uint64_t>(rank) * kPerRank + static_cast<std::uint64_t>(i);
  };
  auto val_of = [seed](std::uint64_t k) { return k * 0x9E3779B97F4A7C15ULL + seed; };

  // Phase 1+2: fresh inserts (all land), then duplicate inserts (all reject).
  std::vector<std::vector<bool>> scalar_ins(ranks), batched_ins(ranks);
  std::vector<std::vector<bool>> scalar_dup(ranks), batched_dup(ranks);
  scalar_ctx.run([&](sim::Actor& self) {
    auto& ins = scalar_ins[static_cast<std::size_t>(self.rank())];
    auto& dup = scalar_dup[static_cast<std::size_t>(self.rank())];
    for (int i = 0; i < kPerRank; ++i) {
      const auto k = key_of(self.rank(), i);
      ins.push_back(scalar_map.insert(k, val_of(k)));
    }
    for (int i = 0; i < kPerRank; ++i) {
      const auto k = key_of(self.rank(), i);
      dup.push_back(scalar_map.insert(k, val_of(k) + 1));
    }
  });
  batched_ctx.run([&](sim::Actor& self) {
    std::vector<std::uint64_t> keys, values;
    for (int i = 0; i < kPerRank; ++i) {
      keys.push_back(key_of(self.rank(), i));
      values.push_back(val_of(keys.back()));
    }
    batched_ins[static_cast<std::size_t>(self.rank())] =
        batched_map.insert_batch(keys, values);
    for (auto& v : values) ++v;
    batched_dup[static_cast<std::size_t>(self.rank())] =
        batched_map.insert_batch(keys, values);
  });
  EXPECT_EQ(scalar_ins, batched_ins);
  EXPECT_EQ(scalar_dup, batched_dup);
  EXPECT_EQ(scalar_map.size(), batched_map.size());

  // Phase 3: find a shifted rank's keys (mix of local and remote partitions).
  std::vector<std::vector<std::optional<std::uint64_t>>> scalar_found(ranks),
      batched_found(ranks);
  scalar_ctx.run([&](sim::Actor& self) {
    const int other = (self.rank() + 1) % scalar_ctx.topology().num_ranks();
    auto& found = scalar_found[static_cast<std::size_t>(self.rank())];
    for (int i = 0; i < kPerRank; ++i) {
      std::uint64_t v = 0;
      found.push_back(scalar_map.find(key_of(other, i), &v)
                          ? std::optional<std::uint64_t>(v)
                          : std::nullopt);
    }
  });
  batched_ctx.run([&](sim::Actor& self) {
    const int other = (self.rank() + 1) % batched_ctx.topology().num_ranks();
    std::vector<std::uint64_t> keys;
    for (int i = 0; i < kPerRank; ++i) keys.push_back(key_of(other, i));
    batched_found[static_cast<std::size_t>(self.rank())] =
        batched_map.find_batch(keys);
  });
  EXPECT_EQ(scalar_found, batched_found);

  // Phase 4: erase own even keys, then re-erase them (now all misses).
  std::vector<std::vector<bool>> scalar_erased(ranks), batched_erased(ranks);
  std::vector<std::vector<bool>> scalar_missed(ranks), batched_missed(ranks);
  scalar_ctx.run([&](sim::Actor& self) {
    auto& erased = scalar_erased[static_cast<std::size_t>(self.rank())];
    auto& missed = scalar_missed[static_cast<std::size_t>(self.rank())];
    for (int i = 0; i < kPerRank; i += 2) {
      erased.push_back(scalar_map.erase(key_of(self.rank(), i)));
    }
    for (int i = 0; i < kPerRank; i += 2) {
      missed.push_back(scalar_map.erase(key_of(self.rank(), i)));
    }
  });
  batched_ctx.run([&](sim::Actor& self) {
    std::vector<std::uint64_t> keys;
    for (int i = 0; i < kPerRank; i += 2) keys.push_back(key_of(self.rank(), i));
    batched_erased[static_cast<std::size_t>(self.rank())] =
        batched_map.erase_batch(keys);
    batched_missed[static_cast<std::size_t>(self.rank())] =
        batched_map.erase_batch(keys);
  });
  EXPECT_EQ(scalar_erased, batched_erased);
  EXPECT_EQ(scalar_missed, batched_missed);
  EXPECT_EQ(scalar_map.size(), batched_map.size());

  // Final state: every key the scalar map can answer, the batched map answers
  // identically (one full-keyspace sweep from rank 0).
  std::vector<std::optional<std::uint64_t>> scalar_state, batched_state;
  scalar_ctx.run_one(0, [&](sim::Actor&) {
    for (std::size_t r = 0; r < ranks; ++r) {
      for (int i = 0; i < kPerRank; ++i) {
        std::uint64_t v = 0;
        scalar_state.push_back(scalar_map.find(key_of(static_cast<int>(r), i), &v)
                                   ? std::optional<std::uint64_t>(v)
                                   : std::nullopt);
      }
    }
  });
  batched_ctx.run_one(0, [&](sim::Actor&) {
    std::vector<std::uint64_t> keys;
    for (std::size_t r = 0; r < ranks; ++r) {
      for (int i = 0; i < kPerRank; ++i) keys.push_back(key_of(static_cast<int>(r), i));
    }
    batched_state = batched_map.find_batch(keys);
  });
  EXPECT_EQ(scalar_state, batched_state);
}

TEST_P(BatchedScalarEquivalence, QueuePushBatchPreservesFifo) {
  const auto& param = GetParam();
  if (param.nodes < 2) GTEST_SKIP() << "needs a remote queue host";
  Context::Config cfg;
  cfg.num_nodes = param.nodes;
  cfg.procs_per_node = param.procs;
  cfg.model = sim::CostModel::zero();
  Context scalar_ctx(cfg);
  Context batched_ctx(cfg);

  core::ContainerOptions scalar_opts;
  scalar_opts.first_node = 1;  // rank 0 pushes remotely, through the coalescer
  core::ContainerOptions batched_opts = scalar_opts;
  batched_opts.batch.max_ops = param.max_ops;
  batched_opts.batch.max_delay_ns = 0;
  queue<std::uint64_t> scalar_q(scalar_ctx, scalar_opts);
  queue<std::uint64_t> batched_q(batched_ctx, batched_opts);

  constexpr int kTotal = 192;
  Rng rng(param.seed);
  std::vector<std::uint64_t> values;
  for (int i = 0; i < kTotal; ++i) values.push_back(rng.next());

  scalar_ctx.run_one(0, [&](sim::Actor&) {
    for (const auto v : values) ASSERT_TRUE(scalar_q.push(v));
  });
  batched_ctx.run_one(0, [&](sim::Actor&) {
    const auto ok = batched_q.push_batch(values);
    EXPECT_TRUE(std::all_of(ok.begin(), ok.end(), [](bool b) { return b; }));
  });

  // Coalescing must preserve FIFO: both queues drain to the same sequence.
  std::vector<std::uint64_t> scalar_drained, batched_drained;
  scalar_ctx.run_one(0, [&](sim::Actor&) {
    std::uint64_t out;
    while (scalar_q.pop(&out)) scalar_drained.push_back(out);
  });
  batched_ctx.run_one(0, [&](sim::Actor&) {
    std::uint64_t out;
    while (batched_q.pop(&out)) batched_drained.push_back(out);
  });
  EXPECT_EQ(scalar_drained, values);
  EXPECT_EQ(scalar_drained, batched_drained);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BatchedScalarEquivalence,
    ::testing::Values(BatchEquivCase{2, 2, -1, 8, 17},
                      BatchEquivCase{4, 4, -1, 32, 29},
                      BatchEquivCase{4, 2, 2, 4, 41},
                      BatchEquivCase{3, 5, 7, 16, 53},
                      BatchEquivCase{8, 2, -1, 1, 67}));  // max_ops=1: scalar ship

// Under a seeded fault mix (bundle-level transport faults + per-constituent
// faults inside delivered bundles) every batched op must still resolve to a
// definite per-op status, and after repairing exactly the reported failures
// the batched map converges to the same final state as a fault-free scalar
// run of the same stream.
class BatchedFaultEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BatchedFaultEquivalence, RepairedBatchedRunMatchesFaultFreeScalarRun) {
  auto plan = std::make_shared<fabric::FaultPlan>(GetParam());
  fabric::FaultProbabilities rpc_p;
  rpc_p.drop = 0.02;  // whole-bundle transport loss, absorbed by retries
  rpc_p.unavailable = 0.03;
  plan->set(fabric::OpClass::kRpc, rpc_p);
  fabric::FaultProbabilities op_p;
  op_p.drop = 0.04;  // constituent dropped from a delivered bundle
  op_p.throw_handler = 0.03;
  op_p.unavailable = 0.03;
  op_p.duplicate = 0.02;
  plan->set(fabric::OpClass::kBatchOp, op_p);

  Context::Config cfg;
  cfg.num_nodes = 4;
  cfg.procs_per_node = 4;
  cfg.model = sim::CostModel::zero();
  Context scalar_ctx(cfg);

  Context::Config faulty_cfg = cfg;
  faulty_cfg.rpc_options.timeout_ns = 2 * sim::kMillisecond;
  faulty_cfg.rpc_options.max_retries = 4;
  faulty_cfg.fault_plan = plan;
  Context batched_ctx(faulty_cfg);

  core::ContainerOptions scalar_opts;
  core::ContainerOptions batched_opts;
  batched_opts.batch.max_ops = 16;
  batched_opts.batch.max_delay_ns = 0;
  unordered_map<std::uint64_t, std::uint64_t> scalar_map(scalar_ctx, scalar_opts);
  unordered_map<std::uint64_t, std::uint64_t> batched_map(batched_ctx, batched_opts);

  constexpr int kPerRank = 128;
  const auto ranks = static_cast<std::size_t>(scalar_ctx.topology().num_ranks());
  auto key_of = [](int rank, int i) {
    return static_cast<std::uint64_t>(rank) * kPerRank + static_cast<std::uint64_t>(i);
  };
  auto val_of = [](std::uint64_t k) { return k ^ 0xBEEFCAFEULL; };

  // The intended stream: insert all own keys, then erase the even ones.
  scalar_ctx.run([&](sim::Actor& self) {
    for (int i = 0; i < kPerRank; ++i) {
      const auto k = key_of(self.rank(), i);
      ASSERT_TRUE(scalar_map.insert(k, val_of(k)));
    }
  });
  scalar_ctx.run([&](sim::Actor& self) {
    for (int i = 0; i < kPerRank; i += 2) {
      ASSERT_TRUE(scalar_map.erase(key_of(self.rank(), i)));
    }
  });

  // Batched run under faults: per-op statuses captured, never a throw/hang.
  std::vector<std::vector<std::uint64_t>> failed_inserts(ranks);
  batched_ctx.run([&](sim::Actor& self) {
    std::vector<std::uint64_t> keys, vals;
    for (int i = 0; i < kPerRank; ++i) {
      keys.push_back(key_of(self.rank(), i));
      vals.push_back(val_of(keys.back()));
    }
    std::vector<Status> statuses;
    (void)batched_map.insert_batch(keys, vals, &statuses);
    for (std::size_t i = 0; i < statuses.size(); ++i) {
      if (statuses[i].ok()) continue;
      ASSERT_TRUE(statuses[i].code() == StatusCode::kInternal ||
                  statuses[i].code() == StatusCode::kDeadlineExceeded ||
                  statuses[i].code() == StatusCode::kUnavailable)
          << "indefinite per-op status: " << statuses[i].to_string();
      failed_inserts[static_cast<std::size_t>(self.rank())].push_back(keys[i]);
    }
  });
  // Repair exactly what was reported failed, fault-free (upsert covers both
  // never-executed and executed-but-reported-failed constituents).
  batched_ctx.set_fault_plan(nullptr);
  batched_ctx.run([&](sim::Actor& self) {
    for (const auto k : failed_inserts[static_cast<std::size_t>(self.rank())]) {
      (void)batched_map.upsert(k, val_of(k));
    }
  });

  // Erase phase, faults back on.
  batched_ctx.set_fault_plan(plan);
  std::vector<std::vector<std::uint64_t>> failed_erases(ranks);
  batched_ctx.run([&](sim::Actor& self) {
    std::vector<std::uint64_t> keys;
    for (int i = 0; i < kPerRank; i += 2) keys.push_back(key_of(self.rank(), i));
    std::vector<Status> statuses;
    (void)batched_map.erase_batch(keys, &statuses);
    for (std::size_t i = 0; i < statuses.size(); ++i) {
      if (!statuses[i].ok()) {
        failed_erases[static_cast<std::size_t>(self.rank())].push_back(keys[i]);
      }
    }
  });
  batched_ctx.set_fault_plan(nullptr);
  batched_ctx.run([&](sim::Actor& self) {
    for (const auto k : failed_erases[static_cast<std::size_t>(self.rank())]) {
      (void)batched_map.erase(k);
    }
  });

  // Convergence: repaired batched state == fault-free scalar state.
  EXPECT_EQ(batched_map.size(), scalar_map.size());
  std::vector<std::optional<std::uint64_t>> scalar_state, batched_state;
  scalar_ctx.run_one(0, [&](sim::Actor&) {
    for (std::size_t r = 0; r < ranks; ++r) {
      for (int i = 0; i < kPerRank; ++i) {
        std::uint64_t v = 0;
        scalar_state.push_back(scalar_map.find(key_of(static_cast<int>(r), i), &v)
                                   ? std::optional<std::uint64_t>(v)
                                   : std::nullopt);
      }
    }
  });
  batched_ctx.run_one(0, [&](sim::Actor&) {
    std::vector<std::uint64_t> keys;
    for (std::size_t r = 0; r < ranks; ++r) {
      for (int i = 0; i < kPerRank; ++i) keys.push_back(key_of(static_cast<int>(r), i));
    }
    batched_state = batched_map.find_batch(keys);
  });
  EXPECT_EQ(scalar_state, batched_state);
  EXPECT_GT(plan->counters().total(), 0) << "fault plan never fired";
}

INSTANTIATE_TEST_SUITE_P(Sweep, BatchedFaultEquivalence,
                         ::testing::Values(401u, 502u, 603u));

// ---------------------------------------------------------------------------
// Failover convergence (DESIGN.md §5f): a workload that kills one server
// mid-run, fails over to the promoted replica, then rejoins and repairs,
// must converge byte-for-byte to the state of a fault-free twin running
// the same op stream — across topology shapes, replication factors, cache
// modes, and batching policies, including per-constituent kBatchOp faults
// injected during the down window.
// ---------------------------------------------------------------------------

struct FailoverCase {
  int nodes;
  int procs;
  int partitions;
  int replication;
  cache::CacheMode mode;  // forced on for the faulty run
  bool batched;           // phase-2 ops coalesced vs scalar
  std::uint64_t seed;
};

class FailoverConvergenceSweep : public ::testing::TestWithParam<FailoverCase> {};

TEST_P(FailoverConvergenceSweep, KillPromoteRejoinRepairMatchesFaultFreeTwin) {
  const auto& param = GetParam();
  constexpr sim::NodeId kVictim = 1;
  constexpr int kPerRank = 48;

  auto plan = std::make_shared<fabric::FaultPlan>(param.seed);
  if (param.batched) {
    // Per-constituent faults inside delivered bundles, on top of the kill.
    fabric::FaultProbabilities op_p;
    op_p.drop = 0.03;
    op_p.throw_handler = 0.03;
    op_p.unavailable = 0.03;
    plan->set(fabric::OpClass::kBatchOp, op_p);
  }

  Context::Config ref_cfg;
  ref_cfg.num_nodes = param.nodes;
  ref_cfg.procs_per_node = param.procs;
  ref_cfg.model = sim::CostModel::zero();
  Context ref_ctx(ref_cfg);

  Context::Config fo_cfg = ref_cfg;
  fo_cfg.fault_plan = plan;
  Context fo_ctx(fo_cfg);

  core::ContainerOptions ref_opts;
  ref_opts.num_partitions = param.partitions;
  ref_opts.replication = param.replication;
  core::ContainerOptions fo_opts = ref_opts;
  fo_opts.cache = {.capacity = 256,
                   .ttl_ns = 50 * sim::kMicrosecond,
                   .mode = param.mode};
  if (param.batched) {
    fo_opts.batch = {.max_ops = 8, .max_bytes = 1 << 16, .max_delay_ns = 0};
  }
  unordered_map<std::uint64_t, std::uint64_t> ref_map(ref_ctx, ref_opts);
  unordered_map<std::uint64_t, std::uint64_t> fo_map(fo_ctx, fo_opts);

  auto key_of = [](int rank, int i) {
    return static_cast<std::uint64_t>(rank) * kPerRank +
           static_cast<std::uint64_t>(i);
  };
  auto fresh_of = [](int rank, int i) {
    return 1'000'000 + static_cast<std::uint64_t>(rank) * kPerRank +
           static_cast<std::uint64_t>(i);
  };
  auto val_of = [](std::uint64_t k) { return k * 3 + 1; };

  // Phase 1 (both runs, no faults yet): every rank inserts its keys.
  for (Context* c : {&ref_ctx, &fo_ctx}) {
    auto& m = (c == &ref_ctx) ? ref_map : fo_map;
    c->run([&](sim::Actor& self) {
      for (int i = 0; i < kPerRank; ++i) {
        const auto k = key_of(self.rank(), i);
        ASSERT_TRUE(m.insert(k, val_of(k)));
      }
    });
  }

  // Phase 2: the victim dies. Live ranks keep writing — fresh inserts plus
  // erases of a third of their phase-1 keys; ranks hosted on the victim
  // stay quiet (SPMD code cannot run on a dead server). The reference twin
  // executes the identical stream fault-free.
  ref_ctx.run([&](sim::Actor& self) {
    if (self.node() == kVictim) return;
    for (int i = 0; i < kPerRank; ++i) {
      const auto k = fresh_of(self.rank(), i);
      ASSERT_TRUE(ref_map.insert(k, val_of(k)));
    }
    for (int i = 0; i < kPerRank; i += 3) {
      ASSERT_TRUE(ref_map.erase(key_of(self.rank(), i)));
    }
  });

  plan->fail_node(kVictim);
  const auto ranks = static_cast<std::size_t>(fo_ctx.topology().num_ranks());
  std::vector<std::vector<std::uint64_t>> failed_inserts(ranks);
  std::vector<std::vector<std::uint64_t>> failed_erases(ranks);
  fo_ctx.run([&](sim::Actor& self) {
    if (self.node() == kVictim) return;
    const auto r = static_cast<std::size_t>(self.rank());
    std::vector<std::uint64_t> ins_keys, ins_vals, del_keys;
    for (int i = 0; i < kPerRank; ++i) {
      ins_keys.push_back(fresh_of(self.rank(), i));
      ins_vals.push_back(val_of(ins_keys.back()));
    }
    for (int i = 0; i < kPerRank; i += 3) {
      del_keys.push_back(key_of(self.rank(), i));
    }
    if (param.batched) {
      std::vector<Status> statuses;
      (void)fo_map.insert_batch(ins_keys, ins_vals, &statuses);
      for (std::size_t i = 0; i < statuses.size(); ++i) {
        if (!statuses[i].ok()) failed_inserts[r].push_back(ins_keys[i]);
      }
      statuses.clear();
      (void)fo_map.erase_batch(del_keys, &statuses);
      for (std::size_t i = 0; i < statuses.size(); ++i) {
        if (!statuses[i].ok()) failed_erases[r].push_back(del_keys[i]);
      }
    } else {
      for (std::size_t i = 0; i < ins_keys.size(); ++i) {
        ASSERT_TRUE(fo_map.insert(ins_keys[i], ins_vals[i]));
      }
      for (const auto k : del_keys) ASSERT_TRUE(fo_map.erase(k));
    }
  });
  // Repair the transiently-failed constituents scalar, victim still down:
  // every re-issue goes through the failover path.
  fo_ctx.run([&](sim::Actor& self) {
    if (self.node() == kVictim) return;
    const auto r = static_cast<std::size_t>(self.rank());
    for (const auto k : failed_inserts[r]) (void)fo_map.upsert(k, val_of(k));
    for (const auto k : failed_erases[r]) (void)fo_map.erase(k);
  });

  // Phase 3: rejoin; an explicit heal repairs every promoted partition
  // before anyone (including the victim's own ranks, whose local hybrid
  // path bypasses routing) reads again.
  plan->rejoin_node(kVictim);
  fo_ctx.run_one(0, [&](sim::Actor& self) { fo_map.heal(self); });
  for (int p = 0; p < fo_map.num_partitions(); ++p) {
    EXPECT_FALSE(fo_map.partition_promoted(p)) << "partition " << p;
    EXPECT_EQ(fo_map.repair_backlog(p), 0u) << "partition " << p;
  }

  // Byte-for-byte convergence with the fault-free twin over the whole
  // keyspace, phase-1 and phase-2 keys alike.
  EXPECT_EQ(fo_map.size(), ref_map.size());
  std::vector<std::optional<std::uint64_t>> ref_state, fo_state;
  ref_ctx.run_one(0, [&](sim::Actor&) {
    for (std::size_t r = 0; r < ranks; ++r) {
      for (int i = 0; i < kPerRank; ++i) {
        std::uint64_t v = 0;
        ref_state.push_back(ref_map.find(key_of(static_cast<int>(r), i), &v)
                                ? std::optional<std::uint64_t>(v)
                                : std::nullopt);
        v = 0;
        ref_state.push_back(ref_map.find(fresh_of(static_cast<int>(r), i), &v)
                                ? std::optional<std::uint64_t>(v)
                                : std::nullopt);
      }
    }
  });
  fo_ctx.run_one(0, [&](sim::Actor&) {
    for (std::size_t r = 0; r < ranks; ++r) {
      for (int i = 0; i < kPerRank; ++i) {
        std::uint64_t v = 0;
        fo_state.push_back(fo_map.find(key_of(static_cast<int>(r), i), &v)
                               ? std::optional<std::uint64_t>(v)
                               : std::nullopt);
        v = 0;
        fo_state.push_back(fo_map.find(fresh_of(static_cast<int>(r), i), &v)
                               ? std::optional<std::uint64_t>(v)
                               : std::nullopt);
      }
    }
  });
  EXPECT_EQ(ref_state, fo_state);
  EXPECT_GT(plan->counters().node_down_rejections.load(), 0)
      << "the kill window never rejected an op";
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FailoverConvergenceSweep,
    ::testing::Values(
        FailoverCase{2, 2, 4, 1, cache::CacheMode::kOff, false, 11u},
        FailoverCase{3, 1, 3, 1, cache::CacheMode::kInvalidate, true, 22u},
        FailoverCase{4, 2, 8, 2, cache::CacheMode::kUpdate, true, 33u},
        FailoverCase{3, 2, 6, 2, cache::CacheMode::kInvalidate, false, 44u},
        FailoverCase{2, 1, 4, 1, cache::CacheMode::kUpdate, false, 55u},
        FailoverCase{4, 1, 4, 1, cache::CacheMode::kOff, true, 66u},
        FailoverCase{3, 1, 3, 1, cache::CacheMode::kInvalidate, true, 77u}));

// ---------------------------------------------------------------------------
// Rebalance convergence (DESIGN.md §5g): a workload that splits, merges,
// and migrates shards MID-RUN — with per-constituent kBatchOp faults
// injected into the phase between moves — must converge byte-for-byte to
// a fault-free twin that never moved anything, with zero failed ops in
// every fault-free phase, across cache modes, batching policies, and
// replication factors.
// ---------------------------------------------------------------------------

struct RebalanceCase {
  int nodes;
  int procs;
  int partitions;
  int replication;
  cache::CacheMode mode;  // forced on for the rebalancing run
  bool batched;           // phase-2 ops coalesced (with kBatchOp faults)
  std::uint64_t seed;
};

class RebalanceConvergenceSweep : public ::testing::TestWithParam<RebalanceCase> {};

TEST_P(RebalanceConvergenceSweep, MidRunMovesMatchStaticTwin) {
  const auto& param = GetParam();
  constexpr int kPerRank = 48;

  auto plan = std::make_shared<fabric::FaultPlan>(param.seed);
  if (param.batched) {
    fabric::FaultProbabilities op_p;
    op_p.drop = 0.04;
    op_p.throw_handler = 0.03;
    op_p.unavailable = 0.03;
    op_p.duplicate = 0.02;
    plan->set(fabric::OpClass::kBatchOp, op_p);
  }

  Context::Config ref_cfg;
  ref_cfg.num_nodes = param.nodes;
  ref_cfg.procs_per_node = param.procs;
  ref_cfg.model = sim::CostModel::zero();
  Context ref_ctx(ref_cfg);
  Context::Config rb_cfg = ref_cfg;  // faults installed only around phase 2
  if (param.batched) {
    rb_cfg.rpc_options.timeout_ns = 2 * sim::kMillisecond;
    rb_cfg.rpc_options.max_retries = 4;
  }
  Context rb_ctx(rb_cfg);

  core::ContainerOptions ref_opts;
  ref_opts.num_partitions = param.partitions;
  ref_opts.replication = param.replication;
  core::ContainerOptions rb_opts = ref_opts;
  rb_opts.rebalance.enabled = true;
  rb_opts.cache = {.capacity = 256,
                   .ttl_ns = 50 * sim::kMicrosecond,
                   .mode = param.mode};
  if (param.batched) {
    rb_opts.batch = {.max_ops = 8, .max_bytes = 1 << 16, .max_delay_ns = 0};
  }
  unordered_map<std::uint64_t, std::uint64_t> ref_map(ref_ctx, ref_opts);
  unordered_map<std::uint64_t, std::uint64_t> rb_map(rb_ctx, rb_opts);

  auto key_of = [](int rank, int i) {
    return static_cast<std::uint64_t>(rank) * kPerRank +
           static_cast<std::uint64_t>(i);
  };
  auto fresh_of = [](int rank, int i) {
    return 1'000'000 + static_cast<std::uint64_t>(rank) * kPerRank +
           static_cast<std::uint64_t>(i);
  };
  auto val_of = [](std::uint64_t k) { return k * 5 + 3; };

  // Phase 1 (fault-free, both runs): every rank inserts its keys. Zero
  // failed ops: every insert must land.
  for (Context* c : {&ref_ctx, &rb_ctx}) {
    auto& m = (c == &ref_ctx) ? ref_map : rb_map;
    c->run([&](sim::Actor& self) {
      for (int i = 0; i < kPerRank; ++i) {
        const auto k = key_of(self.rank(), i);
        ASSERT_TRUE(m.insert(k, val_of(k)));
      }
    });
  }

  // Move #1, mid-run: split partition 0 and re-home partition 1.
  rb_ctx.run_one(0, [&](sim::Actor&) {
    (void)rb_map.split(0);
    const int target =
        (rb_map.partition_owner(1) + 1) % rb_ctx.topology().num_nodes();
    EXPECT_TRUE(rb_map.migrate(1, target));
    EXPECT_EQ(rb_map.partition_owner(1), target);
  });
  EXPECT_GE(rb_map.rebalances(), 1u);

  // Phase 2, across the moved routes: fresh inserts plus erases of a third
  // of the phase-1 keys. Batched cases run it under injected kBatchOp
  // faults with per-op statuses; scalar cases run fault-free and assert
  // zero failed ops outright.
  if (param.batched) rb_ctx.set_fault_plan(plan);
  ref_ctx.run([&](sim::Actor& self) {
    for (int i = 0; i < kPerRank; ++i) {
      const auto k = fresh_of(self.rank(), i);
      ASSERT_TRUE(ref_map.insert(k, val_of(k)));
    }
    for (int i = 0; i < kPerRank; i += 3) {
      ASSERT_TRUE(ref_map.erase(key_of(self.rank(), i)));
    }
  });
  const auto ranks = static_cast<std::size_t>(rb_ctx.topology().num_ranks());
  std::vector<std::vector<std::uint64_t>> failed_inserts(ranks);
  std::vector<std::vector<std::uint64_t>> failed_erases(ranks);
  rb_ctx.run([&](sim::Actor& self) {
    const auto r = static_cast<std::size_t>(self.rank());
    std::vector<std::uint64_t> ins_keys, ins_vals, del_keys;
    for (int i = 0; i < kPerRank; ++i) {
      ins_keys.push_back(fresh_of(self.rank(), i));
      ins_vals.push_back(val_of(ins_keys.back()));
    }
    for (int i = 0; i < kPerRank; i += 3) {
      del_keys.push_back(key_of(self.rank(), i));
    }
    if (param.batched) {
      std::vector<Status> statuses;
      (void)rb_map.insert_batch(ins_keys, ins_vals, &statuses);
      for (std::size_t i = 0; i < statuses.size(); ++i) {
        if (!statuses[i].ok()) failed_inserts[r].push_back(ins_keys[i]);
      }
      statuses.clear();
      (void)rb_map.erase_batch(del_keys, &statuses);
      for (std::size_t i = 0; i < statuses.size(); ++i) {
        if (!statuses[i].ok()) failed_erases[r].push_back(del_keys[i]);
      }
    } else {
      for (std::size_t i = 0; i < ins_keys.size(); ++i) {
        ASSERT_TRUE(rb_map.insert(ins_keys[i], ins_vals[i]))
            << "failed op after a mid-run move";
      }
      for (const auto k : del_keys) {
        ASSERT_TRUE(rb_map.erase(k)) << "failed op after a mid-run move";
      }
    }
  });
  // Repair the transiently-failed constituents fault-free.
  rb_ctx.set_fault_plan(nullptr);
  rb_ctx.run([&](sim::Actor& self) {
    const auto r = static_cast<std::size_t>(self.rank());
    for (const auto k : failed_inserts[r]) (void)rb_map.upsert(k, val_of(k));
    for (const auto k : failed_erases[r]) (void)rb_map.erase(k);
  });

  // Move #2, after the churn: merge the split-off destination back and
  // re-home partition 1 again (cache leases must revalidate every time).
  rb_ctx.run_one(0, [&](sim::Actor&) {
    if (param.partitions > 2) (void)rb_map.merge(2, 0);
    EXPECT_TRUE(rb_map.migrate(1, rb_map.partition_owner(0) == 0 ? 1 : 0) ||
                true);
  });

  // Byte-for-byte convergence with the never-moved twin, zero failed ops
  // in the readback.
  EXPECT_EQ(rb_map.size(), ref_map.size());
  std::vector<std::optional<std::uint64_t>> ref_state, rb_state;
  ref_ctx.run_one(0, [&](sim::Actor&) {
    for (std::size_t r = 0; r < ranks; ++r) {
      for (int i = 0; i < kPerRank; ++i) {
        std::uint64_t v = 0;
        ref_state.push_back(ref_map.find(key_of(static_cast<int>(r), i), &v)
                                ? std::optional<std::uint64_t>(v)
                                : std::nullopt);
        v = 0;
        ref_state.push_back(ref_map.find(fresh_of(static_cast<int>(r), i), &v)
                                ? std::optional<std::uint64_t>(v)
                                : std::nullopt);
      }
    }
  });
  rb_ctx.run_one(0, [&](sim::Actor&) {
    for (std::size_t r = 0; r < ranks; ++r) {
      for (int i = 0; i < kPerRank; ++i) {
        std::uint64_t v = 0;
        rb_state.push_back(rb_map.find(key_of(static_cast<int>(r), i), &v)
                               ? std::optional<std::uint64_t>(v)
                               : std::nullopt);
        v = 0;
        rb_state.push_back(rb_map.find(fresh_of(static_cast<int>(r), i), &v)
                               ? std::optional<std::uint64_t>(v)
                               : std::nullopt);
      }
    }
  });
  EXPECT_EQ(ref_state, rb_state);
  EXPECT_GE(rb_map.rebalances(), param.partitions > 2 ? 2u : 1u);
  if (param.batched) {
    EXPECT_GT(plan->counters().total(), 0) << "fault plan never fired";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RebalanceConvergenceSweep,
    ::testing::Values(
        RebalanceCase{2, 2, 4, 0, cache::CacheMode::kOff, false, 101u},
        RebalanceCase{3, 1, 3, 1, cache::CacheMode::kInvalidate, true, 202u},
        RebalanceCase{4, 2, 8, 2, cache::CacheMode::kUpdate, true, 303u},
        RebalanceCase{3, 2, 6, 1, cache::CacheMode::kInvalidate, false, 404u},
        RebalanceCase{2, 1, 4, 1, cache::CacheMode::kUpdate, false, 505u},
        RebalanceCase{4, 1, 4, 0, cache::CacheMode::kOff, true, 606u}));

// ---------------------------------------------------------------------------
// Cache transparency: the same phased op stream run with the client-side
// read cache ON and OFF must produce identical per-op results and identical
// final state — for every topology shape, partition count, replication
// factor, batching policy, cache mode, and lease TTL (including ttl_ns=0,
// the exact-consistency setting). Phases are separated by run() barriers
// (which revoke leases), and within a phase no rank writes a key another
// rank reads, so bounded staleness ≤ TTL collapses to exact equivalence —
// caching is a latency optimization, never an observable one.
// ---------------------------------------------------------------------------

struct CacheEquivCase {
  int nodes;
  int procs;
  int partitions;        // -1 = default (one per node)
  int replication;       // async replica partitions per update
  std::size_t batch_ops; // 0 = scalar API; >0 = bulk API with this flush size
  cache::CacheMode mode;
  sim::Nanos ttl_ns;
  std::uint64_t seed;
};

class CacheTransparencySweep : public ::testing::TestWithParam<CacheEquivCase> {};

TEST_P(CacheTransparencySweep, CachedRunMatchesUncachedRun) {
  const auto& param = GetParam();
  Context::Config cfg;
  cfg.num_nodes = param.nodes;
  cfg.procs_per_node = param.procs;
  cfg.model = sim::CostModel::zero();
  Context plain_ctx(cfg);
  Context cached_ctx(cfg);

  core::ContainerOptions plain_opts;
  plain_opts.num_partitions = param.partitions;
  plain_opts.replication = param.replication;
  plain_opts.cache.mode = cache::CacheMode::kOff;
  if (param.batch_ops > 0) {
    plain_opts.batch.max_ops = param.batch_ops;
    plain_opts.batch.max_delay_ns = 0;
  }
  core::ContainerOptions cached_opts = plain_opts;
  cached_opts.cache.mode = param.mode;
  cached_opts.cache.ttl_ns = param.ttl_ns;
  cached_opts.cache.capacity = 64;  // small enough to exercise eviction
  unordered_map<std::uint64_t, std::uint64_t> plain_map(plain_ctx, plain_opts);
  unordered_map<std::uint64_t, std::uint64_t> cached_map(cached_ctx, cached_opts);

  constexpr int kPerRank = 64;
  const auto ranks = static_cast<std::size_t>(plain_ctx.topology().num_ranks());
  const std::uint64_t seed = param.seed;
  auto key_of = [](int rank, int i) {
    return static_cast<std::uint64_t>(rank) * kPerRank + static_cast<std::uint64_t>(i);
  };
  auto val_of = [seed](std::uint64_t k) { return k * 0x9E3779B97F4A7C15ULL + seed; };

  // One phased workload, applied identically to both maps. Reads repeat so
  // the cached run serves genuine hits; writes to read keys happen only in
  // later phases, across lease-revoking barriers.
  auto run_insert_phase = [&](Context& ctx, auto& map) {
    ctx.run([&](sim::Actor& self) {
      if (param.batch_ops > 0) {
        std::vector<std::uint64_t> keys, vals;
        for (int i = 0; i < kPerRank; ++i) {
          keys.push_back(key_of(self.rank(), i));
          vals.push_back(val_of(keys.back()));
        }
        const auto ok = map.insert_batch(keys, vals);
        for (const bool b : ok) ASSERT_TRUE(b);
      } else {
        for (int i = 0; i < kPerRank; ++i) {
          const auto k = key_of(self.rank(), i);
          ASSERT_TRUE(map.insert(k, val_of(k)));
        }
      }
    });
  };
  // Reads a shifted rank's keys kRepeats times; returns per-rank result rows.
  auto run_find_phase = [&](Context& ctx, auto& map, int shift, int repeats) {
    std::vector<std::vector<std::optional<std::uint64_t>>> found(ranks);
    ctx.run([&](sim::Actor& self) {
      const int other = (self.rank() + shift) % ctx.topology().num_ranks();
      auto& row = found[static_cast<std::size_t>(self.rank())];
      for (int rep = 0; rep < repeats; ++rep) {
        if (param.batch_ops > 0) {
          std::vector<std::uint64_t> keys;
          for (int i = 0; i < kPerRank; ++i) keys.push_back(key_of(other, i));
          auto results = map.find_batch(keys);
          for (auto& r : results) row.push_back(std::move(r));
        } else {
          for (int i = 0; i < kPerRank; ++i) {
            std::uint64_t v = 0;
            row.push_back(map.find(key_of(other, i), &v)
                              ? std::optional<std::uint64_t>(v)
                              : std::nullopt);
          }
        }
      }
    });
    return found;
  };
  auto run_upsert_phase = [&](Context& ctx, auto& map) {
    ctx.run([&](sim::Actor& self) {
      for (int i = 0; i < kPerRank; i += 2) {
        const auto k = key_of(self.rank(), i);
        (void)map.upsert(k, val_of(k) + 7);
      }
    });
  };
  auto run_erase_phase = [&](Context& ctx, auto& map) {
    std::vector<std::vector<bool>> erased(ranks);
    ctx.run([&](sim::Actor& self) {
      std::vector<std::uint64_t> keys;
      for (int i = 0; i < kPerRank; i += 3) keys.push_back(key_of(self.rank(), i));
      auto& row = erased[static_cast<std::size_t>(self.rank())];
      if (param.batch_ops > 0) {
        const auto ok = map.erase_batch(keys);
        row.insert(row.end(), ok.begin(), ok.end());
        const auto again = map.erase_batch(keys);  // all misses now
        row.insert(row.end(), again.begin(), again.end());
      } else {
        for (const auto k : keys) row.push_back(map.erase(k));
        for (const auto k : keys) row.push_back(map.erase(k));
      }
    });
    return erased;
  };
  auto final_state = [&](Context& ctx, auto& map) {
    std::vector<std::optional<std::uint64_t>> state;
    ctx.run_one(0, [&](sim::Actor&) {
      for (std::size_t r = 0; r < ranks; ++r) {
        for (int i = 0; i < kPerRank; ++i) {
          std::uint64_t v = 0;
          state.push_back(map.find(key_of(static_cast<int>(r), i), &v)
                              ? std::optional<std::uint64_t>(v)
                              : std::nullopt);
        }
      }
    });
    return state;
  };

  run_insert_phase(plain_ctx, plain_map);
  run_insert_phase(cached_ctx, cached_map);
  EXPECT_EQ(plain_map.size(), cached_map.size());

  // Repeated remote reads: the cached run serves hits, results must agree.
  EXPECT_EQ(run_find_phase(plain_ctx, plain_map, 1, 3),
            run_find_phase(cached_ctx, cached_map, 1, 3));

  // Cross-rank writes, then re-reads of the same keys from a different
  // shift: the epoch piggyback + barrier revocation must surface every
  // update, cached or not.
  run_upsert_phase(plain_ctx, plain_map);
  run_upsert_phase(cached_ctx, cached_map);
  EXPECT_EQ(run_find_phase(plain_ctx, plain_map, 2, 2),
            run_find_phase(cached_ctx, cached_map, 2, 2));

  EXPECT_EQ(run_erase_phase(plain_ctx, plain_map),
            run_erase_phase(cached_ctx, cached_map));
  EXPECT_EQ(plain_map.size(), cached_map.size());

  // Re-read after erasure (negative caching must agree with ground truth),
  // then the full-keyspace state sweep.
  EXPECT_EQ(run_find_phase(plain_ctx, plain_map, 1, 2),
            run_find_phase(cached_ctx, cached_map, 1, 2));
  EXPECT_EQ(final_state(plain_ctx, plain_map), final_state(cached_ctx, cached_map));

  const auto stats = cached_map.cache_stats();
  if (cached_opts.cache.enabled() && param.ttl_ns > 0 && ranks > 1) {
    EXPECT_GT(stats.hits, 0) << "cache-on sweep never served a hit";
  }
  if (param.ttl_ns == 0) {
    EXPECT_EQ(stats.hits, 0) << "ttl_ns=0 must revalidate every read";
  }
  if (param.replication > 0) {
    // Replica partitions saw the async writes: their epochs advanced.
    std::uint64_t replica_epochs = 0;
    for (int p = 0; p < cached_map.num_partitions(); ++p) {
      replica_epochs += cached_map.partition_epoch(p);
    }
    EXPECT_GT(replica_epochs, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CacheTransparencySweep,
    ::testing::Values(
        // Scalar ops, invalidate mode, across topology shapes.
        CacheEquivCase{2, 2, -1, 0, 0, cache::CacheMode::kInvalidate,
                       100 * sim::kMicrosecond, 11},
        CacheEquivCase{4, 4, -1, 0, 0, cache::CacheMode::kInvalidate,
                       100 * sim::kMicrosecond, 13},
        CacheEquivCase{3, 5, 7, 0, 0, cache::CacheMode::kInvalidate,
                       100 * sim::kMicrosecond, 17},
        // Update mode (write-through re-cache of the writer's own outcome).
        CacheEquivCase{4, 2, 2, 0, 0, cache::CacheMode::kUpdate,
                       100 * sim::kMicrosecond, 19},
        // ttl_ns=0: exact consistency, every consult revalidates.
        CacheEquivCase{4, 4, -1, 0, 0, cache::CacheMode::kInvalidate, 0, 23},
        // Batched ops through the coalescer, cache on.
        CacheEquivCase{4, 4, -1, 0, 8, cache::CacheMode::kInvalidate,
                       100 * sim::kMicrosecond, 29},
        CacheEquivCase{3, 5, 7, 0, 16, cache::CacheMode::kUpdate,
                       100 * sim::kMicrosecond, 31},
        // Replication × cache (satellite: replica epochs must advance).
        CacheEquivCase{4, 2, -1, 1, 0, cache::CacheMode::kInvalidate,
                       100 * sim::kMicrosecond, 37},
        CacheEquivCase{4, 4, -1, 2, 8, cache::CacheMode::kUpdate,
                       100 * sim::kMicrosecond, 41}));

// Under a seeded fault mix, a cached run must (a) never serve a pre-write
// value past its lease after a retried write — the writer invalidates its
// own entry before the first attempt ships — and (b) converge, after
// repairing exactly the reported failures, to the same final state as a
// fault-free uncached run of the intended stream. Per-op equivalence under
// faults is not meaningful (a cache hit skips the fault draw an uncached
// read would consume, shifting the seeded sequence), so convergence is the
// property: faults change timing, never correctness.
class CacheFaultConvergence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CacheFaultConvergence, RepairedCachedRunMatchesFaultFreeUncachedRun) {
  auto plan = std::make_shared<fabric::FaultPlan>(GetParam());
  fabric::FaultProbabilities p;
  p.drop = 0.03;
  p.throw_handler = 0.02;
  p.unavailable = 0.03;
  p.duplicate = 0.02;
  plan->set(fabric::OpClass::kRpc, p);

  Context::Config cfg;
  cfg.num_nodes = 4;
  cfg.procs_per_node = 4;
  cfg.model = sim::CostModel::zero();
  Context plain_ctx(cfg);

  Context::Config faulty_cfg = cfg;
  faulty_cfg.rpc_options.timeout_ns = 2 * sim::kMillisecond;
  faulty_cfg.rpc_options.max_retries = 4;
  faulty_cfg.fault_plan = plan;
  Context cached_ctx(faulty_cfg);

  core::ContainerOptions plain_opts;
  plain_opts.cache.mode = cache::CacheMode::kOff;
  core::ContainerOptions cached_opts = plain_opts;
  cached_opts.cache.mode = cache::CacheMode::kInvalidate;
  cached_opts.cache.ttl_ns = 100 * sim::kMicrosecond;
  unordered_map<std::uint64_t, std::uint64_t> plain_map(plain_ctx, plain_opts);
  unordered_map<std::uint64_t, std::uint64_t> cached_map(cached_ctx, cached_opts);

  constexpr int kPerRank = 96;
  const auto ranks = static_cast<std::size_t>(plain_ctx.topology().num_ranks());
  auto key_of = [](int rank, int i) {
    return static_cast<std::uint64_t>(rank) * kPerRank + static_cast<std::uint64_t>(i);
  };
  auto val_of = [](std::uint64_t k) { return k ^ 0xCAC4EDULL; };

  // Intended stream, fault-free and uncached: insert all, overwrite evens.
  plain_ctx.run([&](sim::Actor& self) {
    for (int i = 0; i < kPerRank; ++i) {
      const auto k = key_of(self.rank(), i);
      ASSERT_TRUE(plain_map.insert(k, val_of(k)));
    }
  });
  plain_ctx.run([&](sim::Actor& self) {
    for (int i = 0; i < kPerRank; i += 2) {
      const auto k = key_of(self.rank(), i);
      (void)plain_map.upsert(k, val_of(k) + 1);
    }
  });

  // Cached run under faults. Reads are interleaved after the writes so the
  // cache is hot while retries and failures are in flight.
  std::vector<std::vector<std::uint64_t>> failed(ranks);
  auto record_failure = [&](int rank, std::uint64_t k, const HclError& e) {
    ASSERT_TRUE(e.code() == StatusCode::kInternal ||
                e.code() == StatusCode::kDeadlineExceeded ||
                e.code() == StatusCode::kUnavailable)
        << "unexpected terminal code: " << e.what();
    failed[static_cast<std::size_t>(rank)].push_back(k);
  };
  cached_ctx.run([&](sim::Actor& self) {
    for (int i = 0; i < kPerRank; ++i) {
      const auto k = key_of(self.rank(), i);
      try {
        (void)cached_map.insert(k, val_of(k));
      } catch (const HclError& e) {
        record_failure(self.rank(), k, e);
      }
      // Read back through the cache immediately — under faults the write
      // may have taken retries; the value served must never be older than
      // the attempted write (the writer's entry was invalidated up front).
      try {
        std::uint64_t v = 0;
        if (cached_map.find(k, &v)) EXPECT_EQ(v, val_of(k));
      } catch (const HclError&) {
        // A failed read is acceptable under faults; staleness is not.
      }
    }
  });
  // Read-only phase, faults still on: with no writers in flight the epochs
  // are quiescent, so the second sweep is served from lease-valid entries —
  // genuine hits while transport faults are still being drawn for misses.
  cached_ctx.run([&](sim::Actor& self) {
    for (int rep = 0; rep < 2; ++rep) {
      for (int i = 0; i < kPerRank; ++i) {
        const auto k = key_of(self.rank(), i);
        try {
          std::uint64_t v = 0;
          if (cached_map.find(k, &v)) EXPECT_EQ(v, val_of(k));
        } catch (const HclError&) {
        }
      }
    }
  });

  cached_ctx.run([&](sim::Actor& self) {
    for (int i = 0; i < kPerRank; i += 2) {
      const auto k = key_of(self.rank(), i);
      bool wrote = true;
      try {
        (void)cached_map.upsert(k, val_of(k) + 1);
      } catch (const HclError& e) {
        wrote = false;  // old value may legitimately survive until repair
        record_failure(self.rank(), k, e);
      }
      if (!wrote) continue;
      try {
        std::uint64_t v = 0;
        if (cached_map.find(k, &v)) EXPECT_EQ(v, val_of(k) + 1);
      } catch (const HclError&) {
      }
    }
  });

  // Repair exactly the reported failures, fault-free.
  cached_ctx.set_fault_plan(nullptr);
  cached_ctx.run([&](sim::Actor& self) {
    for (const auto k : failed[static_cast<std::size_t>(self.rank())]) {
      const auto i = static_cast<int>(k % kPerRank);
      (void)cached_map.upsert(k, i % 2 == 0 ? val_of(k) + 1 : val_of(k));
    }
  });

  // Convergence: cached+faulty+repaired state == uncached fault-free state.
  EXPECT_EQ(cached_map.size(), plain_map.size());
  std::vector<std::optional<std::uint64_t>> plain_state, cached_state;
  plain_ctx.run_one(0, [&](sim::Actor&) {
    for (std::size_t r = 0; r < ranks; ++r) {
      for (int i = 0; i < kPerRank; ++i) {
        std::uint64_t v = 0;
        plain_state.push_back(plain_map.find(key_of(static_cast<int>(r), i), &v)
                                  ? std::optional<std::uint64_t>(v)
                                  : std::nullopt);
      }
    }
  });
  cached_ctx.run_one(0, [&](sim::Actor&) {
    for (std::size_t r = 0; r < ranks; ++r) {
      for (int i = 0; i < kPerRank; ++i) {
        std::uint64_t v = 0;
        cached_state.push_back(cached_map.find(key_of(static_cast<int>(r), i), &v)
                                   ? std::optional<std::uint64_t>(v)
                                   : std::nullopt);
      }
    }
  });
  EXPECT_EQ(plain_state, cached_state);
  EXPECT_GT(plan->counters().total(), 0) << "fault plan never fired";
  EXPECT_GT(cached_map.cache_stats().hits, 0) << "cache never exercised";
}

INSTANTIATE_TEST_SUITE_P(Sweep, CacheFaultConvergence,
                         ::testing::Values(701u, 802u, 903u));

// ---------------------------------------------------------------------------
// Cost-model monotonicity: with the Ares model, simulated time must grow
// with payload size for every remote container op.
// ---------------------------------------------------------------------------

class PayloadMonotonicity : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(PayloadMonotonicity, BiggerPayloadsCostMore) {
  const std::int64_t bytes = GetParam();
  Context ctx({.num_nodes = 2, .procs_per_node = 1});
  unordered_map<std::uint64_t, std::string> map(ctx);
  std::uint64_t remote_key = 0;
  while (map.partition_owner(map.partition_of(remote_key)) == 0) ++remote_key;

  sim::Nanos small_cost = 0, big_cost = 0;
  ctx.run_one(0, [&](sim::Actor& self) {
    const sim::Nanos t0 = self.now();
    map.insert(remote_key, std::string(64, 'a'));
    small_cost = self.now() - t0;
    map.erase(remote_key);
    const sim::Nanos t1 = self.now();
    map.insert(remote_key, std::string(static_cast<std::size_t>(bytes), 'b'));
    big_cost = self.now() - t1;
  });
  EXPECT_GT(big_cost, small_cost);
}

INSTANTIATE_TEST_SUITE_P(Sweep, PayloadMonotonicity,
                         ::testing::Values(64 << 10, 512 << 10, 2 << 20));

// ---------------------------------------------------------------------------
// Transaction serializability oracle (DESIGN.md §5h): concurrent multi-key
// transactions from every rank — under per-constituent kBatchOp faults,
// cache modes, batching policies, a mid-run node kill, and a mid-run shard
// split — must produce a final state byte-for-byte identical to a
// single-threaded replay of the COMMITTED transactions in CSN order. The
// CSN is drawn while every participant's intent slot is held, so CSN order
// is a legal serial order; any divergence is a serializability violation.
// Aborted transactions (conflicts, down nodes, exhausted retry budgets) are
// excluded from the replay and must leave zero observable state.
// ---------------------------------------------------------------------------

struct TxnSweepCase {
  int nodes;
  int procs;
  int partitions;
  int replication;
  cache::CacheMode mode;  // read-cache mode for the transactional run
  bool batched;           // inject per-constituent kBatchOp faults
  bool failover;          // kill node 1 mid-run (needs replication >= 1)
  bool split;             // split shard 0 mid-run (enables rebalancing)
  std::uint64_t seed;
};

class TxnSerializabilitySweep : public ::testing::TestWithParam<TxnSweepCase> {};

namespace txn_sweep {

constexpr std::uint64_t kKeys = 48;
constexpr int kTxnsPerRank = 24;

/// Abstract single-transaction body: the SAME deterministic function runs
/// against the distributed map (staged through a Txn) and against the local
/// model (during the CSN-order replay). `read` returns 0 for absent keys.
struct TxnOps {
  std::function<std::uint64_t(std::uint64_t)> read;
  std::function<void(std::uint64_t, std::uint64_t)> write;
  std::function<void(std::uint64_t)> erase;
};

/// Body (sweep_seed, rank, idx, round) — reads two keys, writes one derived
/// value, and either erases or rewrites the second key. Pure given the map
/// state it reads, which is what makes the serial-order replay an oracle.
inline void run_body(std::uint64_t sweep_seed, int rank, int idx, int round,
                     const TxnOps& ops) {
  Rng g(mix64(sweep_seed ^ (static_cast<std::uint64_t>(rank) * 1000003 +
                            static_cast<std::uint64_t>(idx) * 7919 +
                            static_cast<std::uint64_t>(round) * 104729)));
  const std::uint64_t k1 = g.next_below(kKeys);
  const std::uint64_t k2 = g.next_below(kKeys);
  const bool drop_k2 = (g.next() & 1) != 0;
  const std::uint64_t v1 = ops.read(k1);
  const std::uint64_t v2 = ops.read(k2);
  ops.write(k1, v1 + v2 + static_cast<std::uint64_t>(idx) + 1);
  if (drop_k2) {
    ops.erase(k2);
  } else {
    ops.write(k2, v2 * 3 + static_cast<std::uint64_t>(rank) + 1);
  }
}

struct Commit {
  std::uint64_t csn;
  int rank;
  int idx;
  int round;
};

}  // namespace txn_sweep

TEST_P(TxnSerializabilitySweep, ConcurrentTxnsMatchCsnOrderReplay) {
  using txn_sweep::Commit;
  using txn_sweep::kKeys;
  using txn_sweep::kTxnsPerRank;
  using txn_sweep::TxnOps;
  const auto& param = GetParam();
  const std::uint64_t seed = env_seed(param.seed);
  SCOPED_TRACE(::testing::Message()
               << "reproduce with HCL_SEED=" << seed << " ctest -R TxnSeri");
  constexpr sim::NodeId kVictim = 1;

  auto plan = std::make_shared<fabric::FaultPlan>(seed);
  if (param.batched) {
    // Transient per-constituent faults inside the prepare/commit bundles:
    // drops and handler throws surface as kAborted and must be absorbed by
    // the coordinator's abort-then-retry loop, never by lost intents.
    fabric::FaultProbabilities op_p;
    op_p.drop = 0.02;
    op_p.throw_handler = 0.02;
    op_p.unavailable = 0.02;
    plan->set(fabric::OpClass::kBatchOp, op_p);
  }

  Context::Config cfg;
  cfg.num_nodes = param.nodes;
  cfg.procs_per_node = param.procs;
  cfg.model = sim::CostModel::zero();
  cfg.fault_plan = plan;
  Context ctx(cfg);

  core::ContainerOptions opts;
  opts.num_partitions = param.partitions;
  opts.replication = param.replication;
  opts.cache = {.capacity = 256,
                .ttl_ns = 50 * sim::kMicrosecond,
                .mode = param.mode};
  if (param.batched) {
    opts.batch = {.max_ops = 8, .max_bytes = 1 << 16, .max_delay_ns = 0};
  }
  opts.rebalance.enabled = param.split;
  unordered_map<std::uint64_t, std::uint64_t> m(ctx, opts);
  txn::TxnCoordinator coord(ctx);

  // Phase A: deterministic base state, mirrored into the local model.
  std::map<std::uint64_t, std::uint64_t> model;
  ctx.run_one(0, [&](sim::Actor&) {
    for (std::uint64_t k = 0; k < kKeys; ++k) {
      ASSERT_TRUE(m.insert(k, k * 7 + 1));
    }
  });
  for (std::uint64_t k = 0; k < kKeys; ++k) model[k] = k * 7 + 1;

  // Phases B/C: every rank runs its transaction stream CONCURRENTLY against
  // the shared keyspace. Commits are logged with their CSN; aborted or
  // unavailable transactions are logged nowhere and must stay invisible.
  std::mutex log_mutex;
  std::vector<Commit> committed;
  auto run_round = [&](int round) {
    ctx.run([&](sim::Actor& self) {
      if (param.failover && round == 1 && self.node() == kVictim) {
        return;  // SPMD ranks on the victim cannot run once it dies
      }
      for (int i = 0; i < kTxnsPerRank; ++i) {
        // Rank 0 fires the mid-run events halfway through round 1, while
        // every other rank's transactions are in flight.
        if (round == 1 && self.rank() == 0 && i == kTxnsPerRank / 2) {
          if (param.split) m.split(0);
          if (param.failover) plan->fail_node(kVictim);
        }
        std::uint64_t csn = 0;
        const Status st = coord.run(
            self,
            [&](txn::Txn& t) {
              TxnOps ops;
              ops.read = [&](std::uint64_t k) {
                std::uint64_t v = 0;
                return m.txn_find(self, t, k, &v) ? v : 0;
              };
              ops.write = [&](std::uint64_t k, std::uint64_t v) {
                m.txn_put(t, k, v);
              };
              ops.erase = [&](std::uint64_t k) { m.txn_erase(t, k); };
              txn_sweep::run_body(seed, self.rank(), i, round, ops);
            },
            &csn);
        if (st.ok()) {
          std::lock_guard<std::mutex> lk(log_mutex);
          committed.push_back(Commit{csn, self.rank(), i, round});
        } else {
          // Only conflict exhaustion or a down participant may fail a
          // transaction; anything else is a protocol bug.
          EXPECT_TRUE(st.code() == StatusCode::kAborted ||
                      st.code() == StatusCode::kUnavailable)
              << st.message();
        }
      }
    });
  };
  run_round(0);
  run_round(1);

  // Recovery: rejoin the victim and heal every promoted partition before
  // the oracle reads. Transactions committed through fo_txn_commit during
  // the down window must survive the repair.
  if (param.failover) {
    plan->rejoin_node(kVictim);
    ctx.run_one(0, [&](sim::Actor& self) { m.heal(self); });
    for (int p = 0; p < m.num_partitions(); ++p) {
      EXPECT_FALSE(m.partition_promoted(p)) << "partition " << p;
    }
  }

  // Deliberate abort, post-run: a conflicting rival forces kAborted with a
  // zero retry budget; the staged sentinel write must never become visible.
  const std::uint64_t kSentinel = kKeys + 1000;
  txn::TxnPolicy no_retry;
  no_retry.max_retries = 0;
  txn::TxnCoordinator doomed(ctx, no_retry);
  ctx.run_one(0, [&](sim::Actor& self) {
    const Status st = doomed.run(self, [&](txn::Txn& t) {
      std::uint64_t v = 0;
      (void)m.txn_find(self, t, 0, &v);  // v stays 0 when key 0 was erased
      (void)m.upsert(0, v + 1);  // rival moves the epoch after our read
      m.txn_put(t, kSentinel, 0xDEAD);
    });
    EXPECT_EQ(st.code(), StatusCode::kAborted);
  });

  // The oracle: replay ONLY the committed transactions, single-threaded, in
  // CSN order, against the local model.
  std::sort(committed.begin(), committed.end(),
            [](const Commit& a, const Commit& b) { return a.csn < b.csn; });
  for (std::size_t i = 1; i < committed.size(); ++i) {
    ASSERT_NE(committed[i].csn, committed[i - 1].csn) << "duplicate CSN";
  }
  for (const Commit& c : committed) {
    TxnOps ops;
    ops.read = [&](std::uint64_t k) {
      auto it = model.find(k);
      return it == model.end() ? 0 : it->second;
    };
    ops.write = [&](std::uint64_t k, std::uint64_t v) { model[k] = v; };
    ops.erase = [&](std::uint64_t k) { model.erase(k); };
    txn_sweep::run_body(seed, c.rank, c.idx, c.round, ops);
  }
  {
    // The doomed transaction's rival write ran AFTER every commit above, so
    // it lands on the model after the replay, at whatever value the serial
    // history left behind (0 when some commit erased key 0).
    auto it0 = model.find(0);
    model[0] = (it0 == model.end() ? 0 : it0->second) + 1;
  }

  // Byte-for-byte convergence over the whole keyspace (plus the sentinel,
  // which must have stayed invisible).
  std::vector<std::optional<std::uint64_t>> dist_state;
  ctx.run_one(0, [&](sim::Actor&) {
    for (std::uint64_t k = 0; k <= kKeys; ++k) {
      const std::uint64_t probe = (k == kKeys) ? kSentinel : k;
      std::uint64_t v = 0;
      dist_state.push_back(m.find(probe, &v) ? std::optional<std::uint64_t>(v)
                                             : std::nullopt);
    }
  });
  std::vector<std::optional<std::uint64_t>> model_state;
  for (std::uint64_t k = 0; k <= kKeys; ++k) {
    const std::uint64_t probe = (k == kKeys) ? kSentinel : k;
    auto it = model.find(probe);
    model_state.push_back(it == model.end()
                              ? std::nullopt
                              : std::optional<std::uint64_t>(it->second));
  }
  EXPECT_EQ(dist_state, model_state);
  EXPECT_FALSE(model_state.back().has_value());

  // Counter parity: coordinator aggregates and the per-NIC txn_* counters
  // tell the same story, and every logged commit is a counted commit.
  EXPECT_EQ(static_cast<std::int64_t>(committed.size()), coord.commits());
  std::int64_t nic_commits = 0, nic_aborts = 0, nic_retries = 0;
  for (int n = 0; n < param.nodes; ++n) {
    auto& c = ctx.fabric().nic(n).counters();
    nic_commits += c.txn_commits.load();
    nic_aborts += c.txn_aborts.load();
    nic_retries += c.txn_retries.load();
  }
  EXPECT_EQ(nic_commits, coord.commits() + doomed.commits());
  EXPECT_EQ(nic_aborts, coord.aborts() + doomed.aborts());
  EXPECT_EQ(nic_retries, coord.retries() + doomed.retries());
  EXPECT_GE(doomed.aborts(), 1);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TxnSerializabilitySweep,
    ::testing::Values(
        TxnSweepCase{2, 2, 4, 0, cache::CacheMode::kOff, false, false, false,
                     101u},
        TxnSweepCase{3, 1, 3, 1, cache::CacheMode::kInvalidate, true, true,
                     false, 202u},
        TxnSweepCase{3, 2, 6, 1, cache::CacheMode::kUpdate, true, false, true,
                     303u},
        TxnSweepCase{4, 1, 4, 1, cache::CacheMode::kInvalidate, false, true,
                     true, 404u},
        TxnSweepCase{2, 1, 4, 0, cache::CacheMode::kUpdate, true, false, false,
                     505u},
        TxnSweepCase{4, 2, 8, 2, cache::CacheMode::kOff, false, true, false,
                     606u}));

// ---------------------------------------------------------------------------
// Shm-tier equivalence (DESIGN.md §5i): the shared-memory transport is a
// pure routing/cost substitution — a twin running the identical phased
// workload with the tier ON (whole cluster one pod, so every eligible op
// rides a ring) must converge byte-for-byte with a tier-OFF twin, across
// topology shapes, batching policies, cache modes, and a mid-run failover
// window with per-constituent kBatchOp faults. Counter parity: client RPCs
// are counted identically on both tiers (shm_sends only tells the split).
// ---------------------------------------------------------------------------

struct ShmCase {
  int nodes;
  int procs;
  int partitions;
  int replication;
  cache::CacheMode mode;  // forced identically on BOTH twins
  bool batched;
  bool faults;  // mid-run kill/promote/rejoin + kBatchOp faults
  std::uint64_t seed;
};

class ShmEquivalenceSweep : public ::testing::TestWithParam<ShmCase> {};

TEST_P(ShmEquivalenceSweep, ShmOnMatchesShmOffByteForByte) {
  const auto& param = GetParam();
  constexpr sim::NodeId kVictim = 1;
  constexpr int kPerRank = 48;

  auto make_plan = [&] {
    auto plan = std::make_shared<fabric::FaultPlan>(param.seed);
    if (param.faults && param.batched) {
      fabric::FaultProbabilities op_p;
      op_p.drop = 0.03;
      op_p.throw_handler = 0.03;
      op_p.unavailable = 0.03;
      plan->set(fabric::OpClass::kBatchOp, op_p);
    }
    return plan;
  };

  Context::Config off_cfg;
  off_cfg.num_nodes = param.nodes;
  off_cfg.procs_per_node = param.procs;
  off_cfg.model = sim::CostModel::zero();
  off_cfg.shm = shm::ShmPolicy{};  // tier off regardless of the environment
  Context::Config on_cfg = off_cfg;
  on_cfg.shm.enabled = true;
  on_cfg.shm.pod_nodes = param.nodes;  // one pod: maximal ring traffic
  Context off_ctx(off_cfg);
  Context on_ctx(on_cfg);

  core::ContainerOptions opts;
  opts.num_partitions = param.partitions;
  opts.replication = param.replication;
  opts.cache = {.capacity = 256,
                .ttl_ns = 50 * sim::kMicrosecond,
                .mode = param.mode};
  if (param.batched) {
    opts.batch = {.max_ops = 8, .max_bytes = 1 << 16, .max_delay_ns = 0};
  }
  unordered_map<std::uint64_t, std::uint64_t> off_map(off_ctx, opts);
  unordered_map<std::uint64_t, std::uint64_t> on_map(on_ctx, opts);

  auto key_of = [](int rank, int i) {
    return static_cast<std::uint64_t>(rank) * kPerRank +
           static_cast<std::uint64_t>(i);
  };
  auto fresh_of = [](int rank, int i) {
    return 1'000'000 + static_cast<std::uint64_t>(rank) * kPerRank +
           static_cast<std::uint64_t>(i);
  };
  auto val_of = [](std::uint64_t k) { return k * 7 + 2; };
  const auto ranks = static_cast<std::size_t>(on_ctx.topology().num_ranks());

  // Each twin runs the IDENTICAL phased workload; transient per-op failures
  // during a twin's fault window are repaired by that twin before compare.
  auto run_workload = [&](Context& ctx,
                          unordered_map<std::uint64_t, std::uint64_t>& map) {
    // Phase 1, fault-free: every rank inserts its keys. Must all land.
    ctx.run([&](sim::Actor& self) {
      for (int i = 0; i < kPerRank; ++i) {
        const auto k = key_of(self.rank(), i);
        ASSERT_TRUE(map.insert(k, val_of(k)));
      }
    });

    std::shared_ptr<fabric::FaultPlan> plan;
    if (param.faults) {
      plan = make_plan();
      ctx.set_fault_plan(plan);
      plan->fail_node(kVictim);
    }

    // Phase 2: fresh inserts plus erases of a third of the phase-1 keys.
    // Under faults the victim's ranks stay quiet and failed constituents
    // are repaired through the failover path, victim still down.
    std::vector<std::vector<std::uint64_t>> failed_inserts(ranks);
    std::vector<std::vector<std::uint64_t>> failed_erases(ranks);
    ctx.run([&](sim::Actor& self) {
      if (param.faults && self.node() == kVictim) return;
      const auto r = static_cast<std::size_t>(self.rank());
      std::vector<std::uint64_t> ins_keys, ins_vals, del_keys;
      for (int i = 0; i < kPerRank; ++i) {
        ins_keys.push_back(fresh_of(self.rank(), i));
        ins_vals.push_back(val_of(ins_keys.back()));
      }
      for (int i = 0; i < kPerRank; i += 3) {
        del_keys.push_back(key_of(self.rank(), i));
      }
      if (param.batched) {
        std::vector<Status> statuses;
        (void)map.insert_batch(ins_keys, ins_vals, &statuses);
        for (std::size_t i = 0; i < statuses.size(); ++i) {
          if (!statuses[i].ok()) failed_inserts[r].push_back(ins_keys[i]);
        }
        statuses.clear();
        (void)map.erase_batch(del_keys, &statuses);
        for (std::size_t i = 0; i < statuses.size(); ++i) {
          if (!statuses[i].ok()) failed_erases[r].push_back(del_keys[i]);
        }
      } else {
        for (std::size_t i = 0; i < ins_keys.size(); ++i) {
          ASSERT_TRUE(map.insert(ins_keys[i], ins_vals[i]));
        }
        for (const auto k : del_keys) ASSERT_TRUE(map.erase(k));
      }
    });
    if (param.faults) {
      ctx.run([&](sim::Actor& self) {
        if (self.node() == kVictim) return;
        const auto r = static_cast<std::size_t>(self.rank());
        for (const auto k : failed_inserts[r]) (void)map.upsert(k, val_of(k));
        for (const auto k : failed_erases[r]) (void)map.erase(k);
      });
      plan->rejoin_node(kVictim);
      ctx.run_one(0, [&](sim::Actor& self) { map.heal(self); });
      // But the victim's ranks never ran phase 2: replay their slice so
      // both twins executed the same logical op stream end-to-end.
      ctx.run([&](sim::Actor& self) {
        if (self.node() != kVictim) return;
        for (int i = 0; i < kPerRank; ++i) {
          const auto k = fresh_of(self.rank(), i);
          (void)map.upsert(k, val_of(k));
        }
        for (int i = 0; i < kPerRank; i += 3) {
          (void)map.erase(key_of(self.rank(), i));
        }
      });
    }

    // Final read of the whole keyspace from one rank.
    std::vector<std::optional<std::uint64_t>> state;
    ctx.run_one(0, [&](sim::Actor&) {
      for (std::size_t r = 0; r < ranks; ++r) {
        for (int i = 0; i < kPerRank; ++i) {
          std::uint64_t v = 0;
          state.push_back(map.find(key_of(static_cast<int>(r), i), &v)
                              ? std::optional<std::uint64_t>(v)
                              : std::nullopt);
          v = 0;
          state.push_back(map.find(fresh_of(static_cast<int>(r), i), &v)
                              ? std::optional<std::uint64_t>(v)
                              : std::nullopt);
        }
      }
    });
    return state;
  };

  const auto off_state = run_workload(off_ctx, off_map);
  const auto on_state = run_workload(on_ctx, on_map);
  EXPECT_EQ(on_map.size(), off_map.size());
  EXPECT_EQ(on_state, off_state);

  // Tier split: the on-twin really rode rings (multi-node pods put even
  // cross-node traffic on them), the off-twin never did.
  std::int64_t on_shm = 0, off_shm = 0;
  for (int n = 0; n < param.nodes; ++n) {
    on_shm += on_ctx.fabric().nic(n).counters().shm_sends.load();
    off_shm += off_ctx.fabric().nic(n).counters().shm_sends.load();
  }
  EXPECT_GT(on_shm, 0);
  EXPECT_EQ(off_shm, 0);

  // Counter parity on the deterministic slice: with no faults and no cache
  // (retries and hit/miss streams are the only timing-dependent counters),
  // both twins issued the exact same number of client RPCs — the tier moves
  // traffic, it never adds or removes ops.
  if (!param.faults && param.mode == cache::CacheMode::kOff) {
    std::int64_t on_rpcs = 0, off_rpcs = 0;
    for (int n = 0; n < param.nodes; ++n) {
      on_rpcs += on_ctx.fabric().nic(n).counters().rpc_count.load();
      off_rpcs += off_ctx.fabric().nic(n).counters().rpc_count.load();
    }
    EXPECT_EQ(on_rpcs, off_rpcs);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ShmEquivalenceSweep,
    ::testing::Values(
        ShmCase{2, 2, 4, 1, cache::CacheMode::kOff, false, false, 17u},
        ShmCase{3, 1, 3, 1, cache::CacheMode::kOff, true, false, 28u},
        ShmCase{4, 2, 8, 2, cache::CacheMode::kInvalidate, true, false, 39u},
        ShmCase{3, 2, 6, 1, cache::CacheMode::kUpdate, false, false, 40u},
        ShmCase{2, 2, 4, 2, cache::CacheMode::kOff, false, true, 51u},
        ShmCase{3, 1, 3, 2, cache::CacheMode::kInvalidate, true, true, 62u},
        ShmCase{4, 2, 8, 2, cache::CacheMode::kUpdate, true, true, 73u}));

}  // namespace
}  // namespace hcl
