// Property-based sweeps (TEST_P) across the stack: invariants that must
// hold for every parameter combination, not just hand-picked cases.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "common/rng.h"
#include "core/hcl.h"
#include "lf/cuckoo_map.h"
#include "lf/skiplist_map.h"
#include "serial/serialize.h"

namespace hcl {
namespace {

// ---------------------------------------------------------------------------
// Serialization: random structured values round-trip under every backend and
// payload size.
// ---------------------------------------------------------------------------

struct WireCase {
  std::size_t string_len;
  std::size_t vector_len;
  std::uint64_t seed;
};

class SerializationRoundTrip : public ::testing::TestWithParam<WireCase> {};

struct Nested {
  std::int64_t id = 0;
  std::string name;
  std::vector<double> samples;
  std::map<std::string, std::uint32_t> tags;

  template <typename Ar>
  void serialize(Ar& ar) {
    ar & id & name & samples & tags;
  }
  bool operator==(const Nested&) const = default;
};

TEST_P(SerializationRoundTrip, RawAndPackedAgree) {
  const auto& param = GetParam();
  Rng rng(param.seed);
  Nested value;
  value.id = static_cast<std::int64_t>(rng.next()) - (1LL << 62);
  value.name = rng.next_string(param.string_len);
  value.samples.resize(param.vector_len);
  for (auto& s : value.samples) s = rng.next_double() * 1e9;
  for (std::size_t i = 0; i < param.vector_len % 7; ++i) {
    value.tags[rng.next_string(4)] = static_cast<std::uint32_t>(rng.next());
  }

  auto raw = serial::pack<Nested, serial::RawBackend>(value);
  auto packed = serial::pack<Nested, serial::PackedBackend>(value);
  EXPECT_EQ((serial::unpack<Nested, serial::RawBackend>(raw)), value);
  EXPECT_EQ((serial::unpack<Nested, serial::PackedBackend>(packed)), value);
  // Truncating any prefix must never produce a silent wrong value: it either
  // throws or the full decode above already proved integrity.
  if (raw.size() > 4) {
    auto cut = raw;
    cut.resize(cut.size() / 2);
    EXPECT_THROW(
        (serial::unpack<Nested, serial::RawBackend>(std::span<const std::byte>(cut))),
        HclError);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SerializationRoundTrip,
    ::testing::Values(WireCase{0, 0, 1}, WireCase{1, 1, 2}, WireCase{16, 8, 3},
                      WireCase{255, 64, 4}, WireCase{4096, 1000, 5},
                      WireCase{100'000, 0, 6}, WireCase{7, 4096, 7}));

// ---------------------------------------------------------------------------
// CuckooMap: under any (threads, initial buckets), N disjoint inserts all
// land, all are findable, and size is exact.
// ---------------------------------------------------------------------------

class CuckooSweep
    : public ::testing::TestWithParam<std::tuple<int, std::size_t>> {};

TEST_P(CuckooSweep, AllInsertsLandAndAreFound) {
  const auto [threads, buckets] = GetParam();
  lf::CuckooMap<std::uint64_t, std::uint64_t> map(buckets);
  constexpr std::uint64_t kPerThread = 4'000;
  std::vector<std::thread> pool;
  for (int t = 0; t < threads; ++t) {
    pool.emplace_back([&map, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        const std::uint64_t k = static_cast<std::uint64_t>(t) * kPerThread + i;
        ASSERT_TRUE(map.insert(k, k ^ 0xABCD));
      }
    });
  }
  for (auto& th : pool) th.join();
  EXPECT_EQ(map.size(), static_cast<std::size_t>(threads) * kPerThread);
  for (std::uint64_t k = 0;
       k < static_cast<std::uint64_t>(threads) * kPerThread; k += 37) {
    std::uint64_t v = 0;
    ASSERT_TRUE(map.find(k, &v));
    EXPECT_EQ(v, k ^ 0xABCD);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, CuckooSweep,
                         ::testing::Combine(::testing::Values(1, 2, 4, 8),
                                            ::testing::Values(2u, 128u, 8192u)));

// ---------------------------------------------------------------------------
// SkipListMap: after any interleaving of inserts and erases, iteration is
// strictly ordered and matches a reference std::map.
// ---------------------------------------------------------------------------

class SkipListSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SkipListSweep, MatchesReferenceModel) {
  Rng rng(GetParam());
  lf::SkipListMap<int, int> list;
  std::map<int, int> reference;
  for (int op = 0; op < 20'000; ++op) {
    const int key = static_cast<int>(rng.next_below(500));
    if ((rng.next() & 3) != 0) {
      const int value = static_cast<int>(rng.next());
      if (reference.emplace(key, value).second) {
        EXPECT_TRUE(list.insert(key, value));
      } else {
        EXPECT_FALSE(list.insert(key, value));
      }
    } else {
      EXPECT_EQ(list.erase(key), reference.erase(key) > 0);
    }
  }
  std::vector<std::pair<int, int>> got;
  list.for_each([&](const int& k, const int& v) { got.emplace_back(k, v); });
  std::vector<std::pair<int, int>> expected(reference.begin(), reference.end());
  EXPECT_EQ(got, expected);
}

INSTANTIATE_TEST_SUITE_P(Sweep, SkipListSweep,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u));

// ---------------------------------------------------------------------------
// Distributed containers: for every topology shape, the SPMD
// insert-find-erase contract holds and sizes are exact.
// ---------------------------------------------------------------------------

struct TopoCase {
  int nodes;
  int procs;
  int partitions;  // -1 = default (one per node)
};

class ContainerTopologySweep : public ::testing::TestWithParam<TopoCase> {};

TEST_P(ContainerTopologySweep, UnorderedMapContract) {
  const auto& param = GetParam();
  Context::Config cfg;
  cfg.num_nodes = param.nodes;
  cfg.procs_per_node = param.procs;
  cfg.model = sim::CostModel::zero();
  Context ctx(cfg);
  core::ContainerOptions options;
  options.num_partitions = param.partitions;
  unordered_map<std::uint64_t, std::uint64_t> map(ctx, options);

  constexpr int kPerRank = 64;
  ctx.run([&](sim::Actor& self) {
    for (int i = 0; i < kPerRank; ++i) {
      const auto k = static_cast<std::uint64_t>(self.rank()) * kPerRank + i;
      ASSERT_TRUE(map.insert(k, k * 2 + 1));
    }
  });
  const auto ranks = static_cast<std::size_t>(ctx.topology().num_ranks());
  EXPECT_EQ(map.size(), ranks * kPerRank);

  ctx.run([&](sim::Actor& self) {
    // Read a shifted rank's keys (forces a mix of local and remote).
    const int other = (self.rank() + 1) % ctx.topology().num_ranks();
    for (int i = 0; i < kPerRank; ++i) {
      const auto k = static_cast<std::uint64_t>(other) * kPerRank + i;
      std::uint64_t v = 0;
      ASSERT_TRUE(map.find(k, &v));
      EXPECT_EQ(v, k * 2 + 1);
    }
  });
  // Erase own even keys — a separate phase, so reads above never race with
  // a neighbour's deletions.
  ctx.run([&](sim::Actor& self) {
    for (int i = 0; i < kPerRank; i += 2) {
      const auto k = static_cast<std::uint64_t>(self.rank()) * kPerRank + i;
      ASSERT_TRUE(map.erase(k));
    }
  });
  EXPECT_EQ(map.size(), ranks * kPerRank / 2);
}

TEST_P(ContainerTopologySweep, QueueConservation) {
  const auto& param = GetParam();
  Context::Config cfg;
  cfg.num_nodes = param.nodes;
  cfg.procs_per_node = param.procs;
  cfg.model = sim::CostModel::zero();
  Context ctx(cfg);
  queue<std::uint64_t> q(ctx);

  constexpr int kPerRank = 50;
  std::atomic<std::uint64_t> pushed_sum{0}, popped_sum{0};
  std::atomic<std::uint64_t> popped_count{0};
  ctx.run([&](sim::Actor& self) {
    for (int i = 0; i < kPerRank; ++i) {
      const auto v = static_cast<std::uint64_t>(self.rank()) * kPerRank + i;
      q.push(v);
      pushed_sum.fetch_add(v);
    }
    std::uint64_t out;
    for (int i = 0; i < kPerRank / 2 && q.pop(&out); ++i) {
      popped_sum.fetch_add(out);
      popped_count.fetch_add(1);
    }
  });
  // Drain the rest; totals must balance exactly.
  ctx.run_one(0, [&](sim::Actor&) {
    std::uint64_t out;
    while (q.pop(&out)) {
      popped_sum.fetch_add(out);
      popped_count.fetch_add(1);
    }
  });
  EXPECT_EQ(popped_count.load(),
            static_cast<std::uint64_t>(ctx.topology().num_ranks()) * kPerRank);
  EXPECT_EQ(pushed_sum.load(), popped_sum.load());
}

TEST_P(ContainerTopologySweep, PriorityQueueGlobalOrder) {
  const auto& param = GetParam();
  Context::Config cfg;
  cfg.num_nodes = param.nodes;
  cfg.procs_per_node = param.procs;
  cfg.model = sim::CostModel::zero();
  Context ctx(cfg);
  priority_queue<std::uint64_t> pq(ctx);

  constexpr int kPerRank = 50;
  ctx.run([&](sim::Actor& self) {
    Rng rng(static_cast<std::uint64_t>(self.rank()) + 1);
    for (int i = 0; i < kPerRank; ++i) pq.push(rng.next_below(1'000'000));
  });
  ctx.run_one(0, [&](sim::Actor&) {
    std::uint64_t prev = 0, cur = 0;
    std::size_t n = 0;
    while (pq.pop(&cur)) {
      EXPECT_GE(cur, prev);
      prev = cur;
      ++n;
    }
    EXPECT_EQ(n, static_cast<std::size_t>(ctx.topology().num_ranks()) * kPerRank);
  });
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ContainerTopologySweep,
    ::testing::Values(TopoCase{1, 1, -1}, TopoCase{1, 8, -1},
                      TopoCase{2, 2, -1}, TopoCase{4, 4, -1},
                      TopoCase{8, 2, -1}, TopoCase{4, 4, 2},
                      TopoCase{3, 5, 7}));

// ---------------------------------------------------------------------------
// Fault tolerance: under a seeded mix of injected drops, delays, duplicated
// requests, handler throws, and transient NACKs, every container op must
// resolve to a definite outcome (success or a well-formed HclError — never a
// hang, never corruption), and after repairing the reported failures the map
// is exactly the intended set.
// ---------------------------------------------------------------------------

class FaultSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FaultSweep, MapStaysConsistentUnderInjectedFaults) {
  auto plan = std::make_shared<fabric::FaultPlan>(GetParam());
  fabric::FaultProbabilities p;
  p.drop = 0.02;
  p.delay = 0.05;
  p.delay_ns = 30 * sim::kMicrosecond;
  p.throw_handler = 0.02;
  p.unavailable = 0.03;
  p.duplicate = 0.02;
  plan->set(fabric::OpClass::kRpc, p);

  Context::Config cfg;
  cfg.num_nodes = 4;
  cfg.procs_per_node = 4;
  cfg.model = sim::CostModel::zero();
  cfg.rpc_options.timeout_ns = 2 * sim::kMillisecond;
  cfg.rpc_options.max_retries = 4;
  cfg.fault_plan = plan;
  Context ctx(cfg);
  unordered_map<std::uint64_t, std::uint64_t> map(ctx);

  constexpr int kPerRank = 128;
  const auto ranks = static_cast<std::size_t>(ctx.topology().num_ranks());
  std::vector<std::vector<std::uint64_t>> failed(ranks);

  ctx.run([&](sim::Actor& self) {
    for (int i = 0; i < kPerRank; ++i) {
      const auto k = static_cast<std::uint64_t>(self.rank()) * kPerRank + i;
      try {
        // Retries absorb transient faults; duplicate delivery may make a
        // landed insert report false (the discarded twin got there first) —
        // either way the key is in.
        (void)map.insert(k, k ^ 0xF00D);
      } catch (const HclError& e) {
        // What the retry policy cannot absorb must surface as one of the
        // definite terminal codes — anything else is a protocol bug.
        ASSERT_TRUE(e.code() == StatusCode::kInternal ||
                    e.code() == StatusCode::kDeadlineExceeded ||
                    e.code() == StatusCode::kUnavailable)
            << "unexpected terminal code: " << e.what();
        failed[static_cast<std::size_t>(self.rank())].push_back(k);
      }
    }
  });

  // Repair with faults cleared: upsert covers both "never executed" (dropped)
  // and "executed but reported late" (deadline passed after side effects).
  ctx.set_fault_plan(nullptr);
  ctx.run([&](sim::Actor& self) {
    for (const auto k : failed[static_cast<std::size_t>(self.rank())]) {
      (void)map.upsert(k, k ^ 0xF00D);
    }
  });

  EXPECT_EQ(map.size(), ranks * kPerRank);
  ctx.run([&](sim::Actor& self) {
    const int other = (self.rank() + 1) % ctx.topology().num_ranks();
    for (int i = 0; i < kPerRank; ++i) {
      const auto k = static_cast<std::uint64_t>(other) * kPerRank + i;
      std::uint64_t v = 0;
      ASSERT_TRUE(map.find(k, &v));
      EXPECT_EQ(v, k ^ 0xF00D);
    }
  });
  EXPECT_GT(plan->counters().total(), 0) << "fault plan never fired";
}

INSTANTIATE_TEST_SUITE_P(Sweep, FaultSweep,
                         ::testing::Values(101u, 202u, 303u));

// ---------------------------------------------------------------------------
// Cost-model monotonicity: with the Ares model, simulated time must grow
// with payload size for every remote container op.
// ---------------------------------------------------------------------------

class PayloadMonotonicity : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(PayloadMonotonicity, BiggerPayloadsCostMore) {
  const std::int64_t bytes = GetParam();
  Context ctx({.num_nodes = 2, .procs_per_node = 1});
  unordered_map<std::uint64_t, std::string> map(ctx);
  std::uint64_t remote_key = 0;
  while (map.partition_owner(map.partition_of(remote_key)) == 0) ++remote_key;

  sim::Nanos small_cost = 0, big_cost = 0;
  ctx.run_one(0, [&](sim::Actor& self) {
    const sim::Nanos t0 = self.now();
    map.insert(remote_key, std::string(64, 'a'));
    small_cost = self.now() - t0;
    map.erase(remote_key);
    const sim::Nanos t1 = self.now();
    map.insert(remote_key, std::string(static_cast<std::size_t>(bytes), 'b'));
    big_cost = self.now() - t1;
  });
  EXPECT_GT(big_cost, small_cost);
}

INSTANTIATE_TEST_SUITE_P(Sweep, PayloadMonotonicity,
                         ::testing::Values(64 << 10, 512 << 10, 2 << 20));

}  // namespace
}  // namespace hcl
