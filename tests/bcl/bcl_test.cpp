#include "bcl/bcl.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>

namespace hcl::bcl {
namespace {

using sim::Actor;
using sim::CostModel;

Context::Config zero_config(int nodes, int procs) {
  Context::Config cfg;
  cfg.num_nodes = nodes;
  cfg.procs_per_node = procs;
  cfg.model = CostModel::zero();
  return cfg;
}

TEST(BclHashMap, InsertFindBasic) {
  Context ctx(zero_config(2, 2));
  HashMap<int, int> map(ctx, 1024);
  ctx.run([&](Actor& self) {
    ASSERT_TRUE(map.insert(self.rank() * 10, self.rank()).ok());
  });
  ctx.run([&](Actor& self) {
    const int other = (self.rank() + 1) % 4;
    int v = -1;
    ASSERT_TRUE(map.find(other * 10, &v).ok());
    EXPECT_EQ(v, other);
    EXPECT_EQ(map.find(999, &v).code(), StatusCode::kNotFound);
  });
  EXPECT_EQ(map.size(), 4u);
}

TEST(BclHashMap, DuplicateDetectedOnReadyBucket) {
  Context ctx(zero_config(1, 1));
  HashMap<int, int> map(ctx, 64);
  ctx.run_one(0, [&](Actor&) {
    EXPECT_TRUE(map.insert(5, 50).ok());
    EXPECT_EQ(map.insert(5, 99).code(), StatusCode::kAlreadyExists);
    int v;
    EXPECT_TRUE(map.find(5, &v).ok());
    EXPECT_EQ(v, 50);
  });
}

TEST(BclHashMap, StaticCapacityLimit) {
  // Limitation (e): the static partition fills and inserts fail — no
  // dynamic resize exists in the client-side model.
  Context ctx(zero_config(1, 1));
  HashMap<int, int> map(ctx, 8);
  ctx.run_one(0, [&](Actor&) {
    int inserted = 0;
    for (int i = 0; i < 64; ++i) {
      if (map.insert(i, i).ok()) ++inserted;
    }
    EXPECT_EQ(inserted, 8);
    EXPECT_EQ(map.insert(1000, 1).code(), StatusCode::kCapacity);
  });
}

TEST(BclHashMap, ProbingResolvesCollisions) {
  Context ctx(zero_config(2, 1));
  HashMap<int, int> map(ctx, 256);
  ctx.run_one(0, [&](Actor&) {
    for (int i = 0; i < 150; ++i) ASSERT_TRUE(map.insert(i, i * 2).ok());
    for (int i = 0; i < 150; ++i) {
      int v = -1;
      ASSERT_TRUE(map.find(i, &v).ok()) << i;
      EXPECT_EQ(v, i * 2);
    }
  });
}

TEST(BclHashMap, InsertCostsThreeRemoteOpsAndFindIsCheaper) {
  // The §II.C motivating breakdown: each insert issues 2 remote CAS + 1
  // write; finds issue fewer remote atomics.
  Context::Config cfg;
  cfg.num_nodes = 2;
  cfg.procs_per_node = 1;
  Context ctx(cfg);
  HashMap<int, int> map(ctx, 256);
  ctx.run_one(0, [&](Actor&) {
    for (int i = 0; i < 20; ++i) (void)map.insert(i, i);
  });
  // Atomic ops: >= 2 per insert (reserve + publish).
  std::int64_t atomics = 0, writes = 0;
  for (int n = 0; n < 2; ++n) {
    atomics += ctx.fabric().nic(n).counters().atomic_count.load();
    writes += ctx.fabric().nic(n).counters().write_count.load();
  }
  EXPECT_GE(atomics, 40);
  EXPECT_GE(writes, 20);
}

TEST(BclHashMap, ExclusiveBuffersExhaustNodeBudget) {
  // §IV.B.2: large payloads times the per-client buffer-pool depth exceed
  // the node memory budget and the op reports OOM.
  Context::Config cfg;
  cfg.num_nodes = 2;
  cfg.procs_per_node = 1;
  cfg.model = CostModel::zero();
  cfg.model.node_memory_budget_bytes = 64 << 20;  // 64 MB node
  cfg.model.bcl_buffer_pool_depth = 128;
  Context ctx(cfg);
  HashMap<int, std::string> map(ctx, 64);
  ctx.run_one(0, [&](Actor&) {
    // 128 KB payload x 128 buffers = 16 MB: fits.
    EXPECT_TRUE(map.insert(1, std::string(128 << 10, 'x')).ok());
    // 1 MB payload x 128 buffers = 128 MB: exceeds the 64 MB budget.
    EXPECT_EQ(map.insert(2, std::string(1 << 20, 'y')).code(),
              StatusCode::kOutOfMemory);
  });
  EXPECT_GT(map.client_buffer_bytes(), 0);
}

TEST(BclHashMap, StaticPreallocationChargesBudgetUpFront) {
  Context::Config cfg = zero_config(2, 1);
  Context ctx(cfg);
  const auto before = ctx.fabric().memory(0).used();
  HashMap<int, int> map(ctx, 4096);
  EXPECT_GT(ctx.fabric().memory(0).used(), before);
}

TEST(BclHashMap, ConcurrentInsertsAllLand) {
  Context ctx(zero_config(4, 4));
  HashMap<int, int> map(ctx, 4096);
  ctx.run([&](Actor& self) {
    for (int i = 0; i < 50; ++i) {
      ASSERT_TRUE(map.insert(self.rank() * 1000 + i, i).ok());
    }
  });
  EXPECT_EQ(map.size(), 16u * 50u);
  ctx.run([&](Actor& self) {
    int v;
    ASSERT_TRUE(map.find(self.rank() * 1000 + 25, &v).ok());
    EXPECT_EQ(v, 25);
  });
}

TEST(BclCircularQueue, PushPopFifo) {
  Context ctx(zero_config(2, 1));
  CircularQueue<int> q(ctx, 64);
  ctx.run_one(1, [&](Actor&) {
    for (int i = 0; i < 20; ++i) ASSERT_TRUE(q.push(i).ok());
    int v;
    for (int i = 0; i < 20; ++i) {
      ASSERT_TRUE(q.pop(&v).ok());
      EXPECT_EQ(v, i);
    }
    EXPECT_EQ(q.pop(&v).code(), StatusCode::kNotFound);
  });
}

TEST(BclCircularQueue, FullQueueRejectsPush) {
  Context ctx(zero_config(1, 1));
  CircularQueue<int> q(ctx, 4);
  ctx.run_one(0, [&](Actor&) {
    for (int i = 0; i < 4; ++i) ASSERT_TRUE(q.push(i).ok());
    EXPECT_EQ(q.push(99).code(), StatusCode::kCapacity);
    int v;
    ASSERT_TRUE(q.pop(&v).ok());
    EXPECT_TRUE(q.push(99).ok());  // slot freed
  });
}

TEST(BclCircularQueue, MwmrConcurrent) {
  Context ctx(zero_config(2, 4));
  CircularQueue<long> q(ctx, 1024);
  std::atomic<long> pushed{0}, popped{0};
  ctx.run([&](Actor& self) {
    long v;
    for (int i = 0; i < 100; ++i) {
      if (self.rank() % 2 == 0) {
        if (q.push(i).ok()) pushed.fetch_add(1);
      } else if (q.pop(&v).ok()) {
        popped.fetch_add(1);
      }
    }
  });
  long drained = 0;
  ctx.run_one(0, [&](Actor&) {
    long v;
    while (q.pop(&v).ok()) ++drained;
  });
  EXPECT_EQ(pushed.load(), popped.load() + drained);
}

TEST(BclCircularQueue, PushPopGenerateRemoteAtomics) {
  Context::Config cfg;
  cfg.num_nodes = 2;
  cfg.procs_per_node = 1;
  Context ctx(cfg);
  CircularQueue<int> q(ctx, 64);
  ctx.run_one(1, [&](Actor&) {
    for (int i = 0; i < 10; ++i) (void)q.push(i);
    int v;
    for (int i = 0; i < 10; ++i) (void)q.pop(&v);
  });
  // push: FAA + publish CAS; pop: claim CAS + free CAS (plus probes).
  EXPECT_GE(ctx.fabric().nic(0).counters().atomic_count.load(), 40);
}

TEST(GlobalPtr, NullAndTagged) {
  GlobalPtr<int> p;
  EXPECT_TRUE(p.is_null());
  int x = 5;
  GlobalPtr<int> g{3, &x};
  EXPECT_FALSE(g.is_null());
  EXPECT_EQ(g.node, 3);
}

}  // namespace
}  // namespace hcl::bcl
