// Cross-partition transactions with an epoch-validated optimistic commit
// (DESIGN.md §5h): staging, two-phase validate+lock / apply, abort-then-
// retry, the high-level multi-key ops, and the interaction matrix — cache
// leases, replica failover (intent replay on promotion), rebalance fences,
// and the commit/abort/retry counters.
#include "txn/txn.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "core/ordered_map.h"
#include "core/priority_queue.h"
#include "core/queue.h"
#include "core/sets.h"
#include "core/unordered_map.h"
#include "fabric/fault_plan.h"

namespace hcl {
namespace {

using fabric::FaultPlan;
using sim::Actor;
using sim::CostModel;

Context::Config zero_config(int nodes, int procs,
                            std::shared_ptr<FaultPlan> plan = nullptr) {
  Context::Config cfg;
  cfg.num_nodes = nodes;
  cfg.procs_per_node = procs;
  cfg.model = CostModel::zero();
  cfg.fault_plan = std::move(plan);
  return cfg;
}

/// First key >= lo whose partition is `p`.
template <typename Map>
int key_in_partition(const Map& m, int p, int lo = 0) {
  for (int k = lo;; ++k) {
    if (m.partition_of(k) == p) return k;
  }
}

// ---------------------------------------------------------------------------
// Commit basics: multi_put, read-your-writes, counters.
// ---------------------------------------------------------------------------

TEST(Txn, MultiPutCommitsAcrossPartitions) {
  Context ctx(zero_config(3, 1));
  unordered_map<int, int> m(ctx, {.num_partitions = 3});
  txn::TxnCoordinator coord(ctx);
  const int ka = key_in_partition(m, 0);
  const int kb = key_in_partition(m, 1);
  const int kc = key_in_partition(m, 2);

  ctx.run([&](Actor& self) {
    if (self.rank() != 0) return;
    std::uint64_t csn = 0;
    const Status st = coord.multi_put<unordered_map<int, int>, int, int>(
        self, m, {{ka, 1}, {kb, 2}, {kc, 3}}, &csn);
    EXPECT_TRUE(st.ok()) << st.message();
    EXPECT_GT(csn, 0u);
    int v = 0;
    EXPECT_TRUE(m.find(ka, &v));
    EXPECT_EQ(v, 1);
    EXPECT_TRUE(m.find(kb, &v));
    EXPECT_EQ(v, 2);
    EXPECT_TRUE(m.find(kc, &v));
    EXPECT_EQ(v, 3);
  });
  EXPECT_EQ(coord.commits(), 1);
  EXPECT_EQ(coord.aborts(), 0);
  EXPECT_EQ(coord.retries(), 0);
  // Counter parity: exactly one txn_commits tick on the coordinator's NIC.
  EXPECT_EQ(ctx.fabric().nic(0).counters().txn_commits.load(), 1);
  EXPECT_EQ(ctx.fabric().nic(0).counters().txn_aborts.load(), 0);
}

TEST(Txn, ReadYourWritesWithinTransaction) {
  Context ctx(zero_config(2, 1));
  unordered_map<int, int> m(ctx, {.num_partitions = 2});
  txn::TxnCoordinator coord(ctx);

  ctx.run([&](Actor& self) {
    if (self.rank() != 0) return;
    EXPECT_TRUE(m.insert(1, 10));
    const Status st = coord.run(self, [&](txn::Txn& t) {
      int v = 0;
      EXPECT_TRUE(m.txn_find(self, t, 1, &v));
      EXPECT_EQ(v, 10);  // committed state before any staging
      m.txn_put(t, 1, 20);
      EXPECT_TRUE(m.txn_find(self, t, 1, &v));
      EXPECT_EQ(v, 20);  // own staged write wins
      m.txn_erase(t, 1);
      EXPECT_FALSE(m.txn_find(self, t, 1, &v));  // own staged erase wins
      m.txn_put(t, 1, 30);
    });
    EXPECT_TRUE(st.ok()) << st.message();
    int v = 0;
    EXPECT_TRUE(m.find(1, &v));
    EXPECT_EQ(v, 30);
  });
}

// ---------------------------------------------------------------------------
// Conflicts: epoch validation, abort-then-retry, zero observable state.
// ---------------------------------------------------------------------------

TEST(Txn, EpochConflictAbortsThenRetrySucceeds) {
  Context ctx(zero_config(2, 1));
  unordered_map<int, int> m(ctx, {.num_partitions = 2});
  txn::TxnCoordinator coord(ctx);
  const int k = key_in_partition(m, 1);

  ctx.run([&](Actor& self) {
    if (self.rank() != 0) return;
    EXPECT_TRUE(m.insert(k, 1));
    int attempt = 0;
    const Status st = coord.run(self, [&](txn::Txn& t) {
      int v = 0;
      EXPECT_TRUE(m.txn_find(self, t, k, &v));
      if (attempt++ == 0) {
        // A rival writes AFTER our read: prepare must see the moved epoch.
        EXPECT_FALSE(m.upsert(k, 100));
      }
      m.txn_put(t, k, v + 1);
    });
    EXPECT_TRUE(st.ok()) << st.message();
    int v = 0;
    EXPECT_TRUE(m.find(k, &v));
    EXPECT_EQ(v, 101);  // retried attempt read the rival's 100
  });
  EXPECT_EQ(coord.commits(), 1);
  EXPECT_EQ(coord.aborts(), 1);
  EXPECT_EQ(coord.retries(), 1);
  EXPECT_EQ(ctx.fabric().nic(0).counters().txn_retries.load(), 1);
}

TEST(Txn, AbortLeavesZeroObservableState) {
  Context ctx(zero_config(2, 1));
  unordered_map<int, int> m(ctx, {.num_partitions = 2});
  txn::TxnPolicy policy;
  policy.max_retries = 0;  // surface the abort instead of retrying
  txn::TxnCoordinator coord(ctx, policy);
  const int kr = key_in_partition(m, 0);   // read (conflicted) key
  const int kw = key_in_partition(m, 1);   // staged-write key

  ctx.run([&](Actor& self) {
    if (self.rank() != 0) return;
    EXPECT_TRUE(m.insert(kr, 1));
    const std::uint64_t epoch_w_before = m.partition_epoch(1);
    const Status st = coord.run(self, [&](txn::Txn& t) {
      int v = 0;
      EXPECT_TRUE(m.txn_find(self, t, kr, &v));
      EXPECT_FALSE(m.upsert(kr, 2));  // rival write -> conflict at prepare
      m.txn_put(t, kw, 42);
    });
    EXPECT_EQ(st.code(), StatusCode::kAborted);
    // The aborted intent is invisible everywhere: no value, no epoch bump
    // on the staged-write partition, no intent slot left behind.
    int v = 0;
    EXPECT_FALSE(m.find(kw, &v));
    EXPECT_EQ(m.partition_epoch(1), epoch_w_before);
    EXPECT_FALSE(m.txn_slot_held(0));
    EXPECT_FALSE(m.txn_slot_held(1));
    EXPECT_TRUE(m.find(kr, &v));
    EXPECT_EQ(v, 2);  // the rival's write is the only surviving effect
  });
  EXPECT_EQ(coord.commits(), 0);
  EXPECT_EQ(coord.aborts(), 1);
  EXPECT_EQ(ctx.fabric().nic(0).counters().txn_aborts.load(), 1);
}

// ---------------------------------------------------------------------------
// High-level shapes: CAS, read-modify-write.
// ---------------------------------------------------------------------------

TEST(Txn, CompareAndSwapValue) {
  Context ctx(zero_config(2, 1));
  unordered_map<int, int> m(ctx, {.num_partitions = 2});
  txn::TxnCoordinator coord(ctx);

  ctx.run([&](Actor& self) {
    if (self.rank() != 0) return;
    EXPECT_TRUE(m.insert(5, 50));
    bool swapped = false;
    EXPECT_TRUE(coord.compare_and_swap_value(self, m, 5, 50, 60, &swapped).ok());
    EXPECT_TRUE(swapped);
    int v = 0;
    EXPECT_TRUE(m.find(5, &v));
    EXPECT_EQ(v, 60);
    // Mismatch: the transaction still commits (a validated "no").
    EXPECT_TRUE(coord.compare_and_swap_value(self, m, 5, 50, 70, &swapped).ok());
    EXPECT_FALSE(swapped);
    EXPECT_TRUE(m.find(5, &v));
    EXPECT_EQ(v, 60);
    // Absent key never swaps.
    EXPECT_TRUE(coord.compare_and_swap_value(self, m, 6, 0, 1, &swapped).ok());
    EXPECT_FALSE(swapped);
    EXPECT_FALSE(m.find(6, &v));
  });
  EXPECT_EQ(coord.commits(), 3);
}

TEST(Txn, ReadModifyWriteAndErase) {
  Context ctx(zero_config(2, 1));
  unordered_map<int, int> m(ctx, {.num_partitions = 2});
  txn::TxnCoordinator coord(ctx);

  ctx.run([&](Actor& self) {
    if (self.rank() != 0) return;
    EXPECT_TRUE(m.insert(7, 1));
    EXPECT_TRUE(coord
                    .read_modify_write(self, m, 7,
                                       [](std::optional<int>& v) {
                                         ASSERT_TRUE(v.has_value());
                                         *v += 10;
                                       })
                    .ok());
    int v = 0;
    EXPECT_TRUE(m.find(7, &v));
    EXPECT_EQ(v, 11);
    // nullopt result = transactional erase.
    EXPECT_TRUE(coord
                    .read_modify_write(self, m, 7,
                                       [](std::optional<int>& val) {
                                         val.reset();
                                       })
                    .ok());
    EXPECT_FALSE(m.find(7, &v));
  });
}

// ---------------------------------------------------------------------------
// Ordered map parity.
// ---------------------------------------------------------------------------

TEST(Txn, OrderedMapCommitAndConflict) {
  Context ctx(zero_config(2, 1));
  map<int, int> m(ctx, {.num_partitions = 2});
  txn::TxnCoordinator coord(ctx);
  const int ka = key_in_partition(m, 0);
  const int kb = key_in_partition(m, 1);

  ctx.run([&](Actor& self) {
    if (self.rank() != 0) return;
    const Status put =
        coord.multi_put<map<int, int>, int, int>(self, m, {{ka, 1}, {kb, 2}});
    EXPECT_TRUE(put.ok()) << put.message();
    int v = 0;
    EXPECT_TRUE(m.find(ka, &v));
    EXPECT_EQ(v, 1);
    // Conflict-and-retry through the skiplist container: any rival mutation
    // in kb's partition moves its epoch and fails our validation.
    const int rival = key_in_partition(m, 1, kb + 1);
    int attempt = 0;
    const Status st = coord.run(self, [&](txn::Txn& t) {
      int cur = 0;
      EXPECT_TRUE(m.txn_find(self, t, kb, &cur));
      if (attempt++ == 0) EXPECT_TRUE(m.insert(rival, 50));
      m.txn_put(t, kb, cur + 1);
    });
    EXPECT_TRUE(st.ok()) << st.message();
    EXPECT_TRUE(m.find(kb, &v));
    EXPECT_EQ(v, 3);
  });
  EXPECT_EQ(coord.commits(), 2);
  EXPECT_EQ(coord.retries(), 1);
}

// ---------------------------------------------------------------------------
// Sets.
// ---------------------------------------------------------------------------

TEST(Txn, SetAddRemoveContains) {
  Context ctx(zero_config(2, 1));
  unordered_set<int> us(ctx, {.num_partitions = 2});
  set<int> os(ctx, {.num_partitions = 2});
  txn::TxnCoordinator coord(ctx);

  ctx.run([&](Actor& self) {
    if (self.rank() != 0) return;
    EXPECT_TRUE(us.insert(1));
    EXPECT_TRUE(os.insert(2));
    const Status st = coord.run(self, [&](txn::Txn& t) {
      EXPECT_TRUE(us.txn_contains(self, t, 1));
      EXPECT_FALSE(os.txn_contains(self, t, 9));
      us.txn_remove(t, 1);
      us.txn_add(t, 3);
      os.txn_add(t, 9);
    });
    EXPECT_TRUE(st.ok()) << st.message();
    EXPECT_FALSE(us.contains(1));
    EXPECT_TRUE(us.contains(3));
    EXPECT_TRUE(os.contains(9));
  });
  EXPECT_EQ(coord.commits(), 1);
}

// ---------------------------------------------------------------------------
// Queues: cross-container transfer, pre-txn pop visibility, pop-min rule.
// ---------------------------------------------------------------------------

TEST(Txn, TransferIsAtomicAndEmptyQueueCommitsNoOp) {
  Context ctx(zero_config(2, 1));
  queue<int> q(ctx);
  unordered_map<int, int> m(ctx, {.num_partitions = 2});
  txn::TxnCoordinator coord(ctx);

  ctx.run([&](Actor& self) {
    if (self.rank() != 0) return;
    EXPECT_TRUE(q.push(7));
    bool moved = false;
    std::uint64_t csn = 0;
    const Status st = coord.transfer(
        self, q, m,
        [](int item) { return std::pair<int, int>(item, item * 10); }, &moved,
        &csn);
    EXPECT_TRUE(st.ok()) << st.message();
    EXPECT_TRUE(moved);
    EXPECT_GT(csn, 0u);
    int v = 0;
    EXPECT_TRUE(m.find(7, &v));
    EXPECT_EQ(v, 70);
    EXPECT_TRUE(q.empty());
    // Empty queue: the transfer commits as a validated no-op.
    EXPECT_TRUE(coord
                    .transfer(self, q, m,
                              [](int item) {
                                return std::pair<int, int>(item, item);
                              },
                              &moved)
                    .ok());
    EXPECT_FALSE(moved);
  });
  EXPECT_EQ(coord.commits(), 2);
}

TEST(Txn, QueuePopsSeePreTransactionStateOnly) {
  Context ctx(zero_config(2, 1));
  queue<int> q(ctx);
  txn::TxnCoordinator coord(ctx);

  ctx.run([&](Actor& self) {
    if (self.rank() != 0) return;
    EXPECT_TRUE(q.push(10));
    const Status st = coord.run(self, [&](txn::Txn& t) {
      q.txn_push(t, 20);
      int v = 0;
      EXPECT_TRUE(q.txn_pop(self, t, &v));
      EXPECT_EQ(v, 10);  // pre-txn front, not the staged 20
      EXPECT_FALSE(q.txn_pop(self, t, &v));  // own push is NOT poppable
    });
    EXPECT_TRUE(st.ok()) << st.message();
    int v = 0;
    EXPECT_TRUE(q.pop(&v));
    EXPECT_EQ(v, 20);  // the staged push landed, the staged pop consumed 10
    EXPECT_TRUE(q.empty());
  });
}

TEST(Txn, PriorityQueueSinglePopRuleAndPopsBeforePushes) {
  Context ctx(zero_config(2, 1));
  priority_queue<int> pq(ctx);
  txn::TxnCoordinator coord(ctx);

  ctx.run([&](Actor& self) {
    if (self.rank() != 0) return;
    EXPECT_TRUE(pq.push(5));
    EXPECT_TRUE(pq.push(9));
    const Status st = coord.run(self, [&](txn::Txn& t) {
      int v = 0;
      EXPECT_TRUE(pq.txn_pop(self, t, &v));
      EXPECT_EQ(v, 5);        // pre-txn minimum
      pq.txn_push(t, 1);      // would be the new minimum...
      try {
        pq.txn_pop(self, t, &v);  // ...but a second staged pop is refused
        FAIL() << "second txn_pop must throw";
      } catch (const HclError& e) {
        EXPECT_EQ(e.code(), StatusCode::kFailedPrecondition);
      }
    });
    EXPECT_TRUE(st.ok()) << st.message();
    // Commit applied the pop (removing 5) BEFORE the push of 1.
    int v = 0;
    EXPECT_TRUE(pq.pop(&v));
    EXPECT_EQ(v, 1);
    EXPECT_TRUE(pq.pop(&v));
    EXPECT_EQ(v, 9);
    EXPECT_TRUE(pq.empty());
  });
}

// ---------------------------------------------------------------------------
// Cache interaction: commits refresh leases, aborts never populate them.
// ---------------------------------------------------------------------------

TEST(Txn, CacheLeaseIsFreshAfterCommit) {
  Context ctx(zero_config(2, 1));
  unordered_map<int, int> m(
      ctx, {.num_partitions = 2,
            .cache = {.capacity = 64,
                      .ttl_ns = 10 * sim::kMillisecond,
                      .mode = cache::CacheMode::kInvalidate}});
  txn::TxnCoordinator coord(ctx);
  const int k = key_in_partition(m, 1);  // remote to rank 0 -> cacheable

  ctx.run([&](Actor& self) {
    if (self.rank() != 0) return;
    EXPECT_TRUE(m.insert(k, 1));
    int v = 0;
    EXPECT_TRUE(m.find(k, &v));  // populates the lease at the old epoch
    EXPECT_EQ(v, 1);
    const Status put = coord.multi_put<unordered_map<int, int>, int, int>(
        self, m, {{k, 2}});
    EXPECT_TRUE(put.ok()) << put.message();
    // The long-TTL lease would still be live; the commit's write-through
    // invalidation must keep it from serving the pre-txn value.
    EXPECT_TRUE(m.find(k, &v));
    EXPECT_EQ(v, 2);
  });
}

TEST(Txn, AbortedIntentNeverServedFromCache) {
  Context ctx(zero_config(2, 1));
  unordered_map<int, int> m(
      ctx, {.num_partitions = 2,
            .cache = {.capacity = 64,
                      .ttl_ns = 10 * sim::kMillisecond,
                      .mode = cache::CacheMode::kUpdate}});
  txn::TxnPolicy policy;
  policy.max_retries = 0;
  txn::TxnCoordinator coord(ctx, policy);
  const int k = key_in_partition(m, 1);

  ctx.run([&](Actor& self) {
    if (self.rank() != 0) return;
    EXPECT_TRUE(m.insert(k, 1));
    const Status st = coord.run(self, [&](txn::Txn& t) {
      int v = 0;
      EXPECT_TRUE(m.txn_find(self, t, k, &v));
      EXPECT_FALSE(m.upsert(k, 2));  // force the abort
      m.txn_put(t, k, 99);           // the intent that must stay invisible
    });
    EXPECT_EQ(st.code(), StatusCode::kAborted);
    int v = 0;
    EXPECT_TRUE(m.find(k, &v));
    EXPECT_EQ(v, 2);  // never 99, cached or authoritative
    EXPECT_TRUE(m.find(k, &v));
    EXPECT_EQ(v, 2);
  });
}

// ---------------------------------------------------------------------------
// Failover interaction: fail-fast prepares, intent replay on promotion.
// ---------------------------------------------------------------------------

TEST(Txn, DownNodeFailsFastWithUnavailable) {
  auto plan = std::make_shared<FaultPlan>(1);
  Context ctx(zero_config(3, 1, plan));
  unordered_map<int, int> m(ctx, {.num_partitions = 3, .replication = 1});
  txn::TxnCoordinator coord(ctx);
  const int k = key_in_partition(m, 1);

  plan->fail_node(1);
  ctx.run([&](Actor& self) {
    if (self.rank() != 0) return;
    // Blind write toward the dead partition: prepare fails fast with
    // kUnavailable — no standby reroute, no retry burn.
    const Status st =
        coord.run(self, [&](txn::Txn& t) { m.txn_put(t, k, 1); });
    EXPECT_EQ(st.code(), StatusCode::kUnavailable);
    // Transactional reads fail fast the same way.
    const Status rd = coord.run(self, [&](txn::Txn& t) {
      int v = 0;
      (void)m.txn_find(self, t, k, &v);
    });
    EXPECT_EQ(rd.code(), StatusCode::kUnavailable);
  });
  EXPECT_EQ(coord.commits(), 0);
  EXPECT_EQ(coord.retries(), 0);
  EXPECT_EQ(coord.aborts(), 2);  // every failed attempt records as an abort
}

TEST(Txn, IntentReplayAfterStandbyPromotion) {
  auto plan = std::make_shared<FaultPlan>(1);
  Context ctx(zero_config(3, 1, plan));
  unordered_map<int, int> m(ctx, {.num_partitions = 3, .replication = 1});
  txn::TxnCoordinator coord(ctx);
  const int k = key_in_partition(m, 1);
  const txn::TxnPolicy policy;

  ctx.run([&](Actor& self) {
    if (self.rank() != 0) return;
    // Drive the two phases by hand so the primary can die INSIDE the
    // prepare->commit window — the case the staged replica intents exist
    // for. Prepare validates and stages onto the standby...
    txn::Txn t = coord.begin();
    m.txn_put(t, k, 55);
    {
      rpc::Batcher prep(ctx.rpc(), policy.batch);
      for (auto* p : t.participants()) p->enqueue_prepare(self, prep, t.id());
      prep.flush_all(self);
    }
    for (auto* p : t.participants()) {
      EXPECT_TRUE(p->settle_prepare(self).ok());
    }
    EXPECT_TRUE(m.txn_slot_held(1));

    // ...the primary dies with the slot held...
    plan->fail_node(1);

    // ...and settle_commit reroutes to fo_txn_commit, which promotes the
    // standby and replays the staged intents into the promoted stream.
    {
      rpc::Batcher apply(ctx.rpc(), policy.batch);
      for (auto* p : t.participants()) p->enqueue_commit(self, apply, t.id());
      apply.flush_all(self);
    }
    for (auto* p : t.participants()) {
      EXPECT_TRUE(p->settle_commit(self, t.id()).ok());
    }
    EXPECT_TRUE(m.partition_promoted(1));
    int v = 0;
    EXPECT_TRUE(m.find(k, &v));  // served by the promoted standby
    EXPECT_EQ(v, 55);
  });

  plan->rejoin_node(1);
  ctx.run([&](Actor& self) {
    if (self.rank() != 0) return;
    m.heal(self);
    int v = 0;
    EXPECT_TRUE(m.find(k, &v));  // repair replayed the txn's write
    EXPECT_EQ(v, 55);
  });
  EXPECT_FALSE(m.partition_promoted(1));
}

// ---------------------------------------------------------------------------
// Rebalance interaction: pending intents pin the shard.
// ---------------------------------------------------------------------------

TEST(Txn, MigrateRefusedWhileIntentsPending) {
  Context ctx(zero_config(3, 1));
  core::ContainerOptions opts;
  opts.num_partitions = 3;
  opts.rebalance.enabled = true;
  unordered_map<int, int> m(ctx, opts);
  txn::TxnCoordinator coord(ctx);
  const int k = key_in_partition(m, 1);
  const txn::TxnPolicy policy;

  ctx.run([&](Actor& self) {
    if (self.rank() != 0) return;
    txn::Txn t = coord.begin();
    m.txn_put(t, k, 1);
    {
      rpc::Batcher prep(ctx.rpc(), policy.batch);
      for (auto* p : t.participants()) p->enqueue_prepare(self, prep, t.id());
      prep.flush_all(self);
    }
    for (auto* p : t.participants()) {
      EXPECT_TRUE(p->settle_prepare(self).ok());
    }
    EXPECT_TRUE(m.txn_slot_held(1));
    // The prepared slot pins the partition against shard moves.
    try {
      m.migrate(1, 0);
      FAIL() << "migrate must refuse while intents are pending";
    } catch (const HclError& e) {
      EXPECT_EQ(e.code(), StatusCode::kFailedPrecondition);
    }
    // Abort releases the slot; the move is allowed again.
    for (auto* p : t.participants()) p->send_abort(self, t.id());
    EXPECT_FALSE(m.txn_slot_held(1));
    int v = 0;
    EXPECT_FALSE(m.find(k, &v));  // the aborted intent never landed
    EXPECT_TRUE(m.migrate(1, 0));
  });
}

TEST(Txn, QueueMigrateRefusedWhileIntentsPending) {
  Context ctx(zero_config(3, 1));
  core::ContainerOptions opts;
  opts.rebalance.enabled = true;
  queue<int> q(ctx, opts);
  txn::TxnCoordinator coord(ctx);
  const txn::TxnPolicy policy;

  ctx.run([&](Actor& self) {
    if (self.rank() != 0) return;
    txn::Txn t = coord.begin();
    q.txn_push(t, 1);
    {
      rpc::Batcher prep(ctx.rpc(), policy.batch);
      for (auto* p : t.participants()) p->enqueue_prepare(self, prep, t.id());
      prep.flush_all(self);
    }
    for (auto* p : t.participants()) {
      EXPECT_TRUE(p->settle_prepare(self).ok());
    }
    EXPECT_TRUE(q.txn_slot_held());
    try {
      q.migrate(1);
      FAIL() << "migrate must refuse while intents are pending";
    } catch (const HclError& e) {
      EXPECT_EQ(e.code(), StatusCode::kFailedPrecondition);
    }
    for (auto* p : t.participants()) p->send_abort(self, t.id());
    EXPECT_FALSE(q.txn_slot_held());
    EXPECT_TRUE(q.empty());  // the aborted push never landed
    EXPECT_TRUE(q.migrate(1));
  });
}

// ---------------------------------------------------------------------------
// Policy knobs.
// ---------------------------------------------------------------------------

TEST(Txn, RetryBudgetExhaustionSurfacesAborted) {
  Context ctx(zero_config(2, 1));
  unordered_map<int, int> m(ctx, {.num_partitions = 2});
  txn::TxnPolicy policy;
  policy.max_retries = 2;
  txn::TxnCoordinator coord(ctx, policy);
  const int k = key_in_partition(m, 0);

  ctx.run([&](Actor& self) {
    if (self.rank() != 0) return;
    EXPECT_TRUE(m.insert(k, 0));
    // Every attempt conflicts: the rival writes after each read.
    const Status st = coord.run(self, [&](txn::Txn& t) {
      int v = 0;
      EXPECT_TRUE(m.txn_find(self, t, k, &v));
      m.upsert(k, v + 1);  // rival write after our read
      m.txn_put(t, k, 1000);
    });
    EXPECT_EQ(st.code(), StatusCode::kAborted);
    int v = 0;
    EXPECT_TRUE(m.find(k, &v));
    EXPECT_EQ(v, 3);  // 1 initial + 2 retries' worth of rival writes
  });
  EXPECT_EQ(coord.commits(), 0);
  EXPECT_EQ(coord.aborts(), 3);
  EXPECT_EQ(coord.retries(), 2);
}

}  // namespace
}  // namespace hcl
