// Shared-memory transport tier (DESIGN.md §5i): ring/slot mechanics, pod
// routing policy, and the engine integration — pod-local ops ride the ring
// at local-memory rates with zero wire packets, and every ineligible case
// (full ring, oversize payload, per-container opt-out, fault-degraded pod)
// falls back transparently to the RDMA path.
#include "shm/ring.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "core/hcl.h"
#include "fabric/fault_plan.h"
#include "obs/trace.h"
#include "rpc/batch.h"
#include "rpc/engine.h"
#include "shm/transport.h"

namespace hcl {
namespace {

using obs::Span;
using obs::SpanKind;
using obs::TracePolicy;
using obs::Tracer;
using rpc::Engine;
using rpc::FuncId;
using rpc::InvokeOptions;
using rpc::ServerCtx;
using shm::Ring;
using shm::ShmPolicy;
using shm::SlotHandle;
using shm::Transport;
using sim::Actor;
using sim::CostModel;
using sim::Nanos;
using sim::Topology;

// ---------------------------------------------------------------------------
// Ring: bounded slot bitmask + arena chunks
// ---------------------------------------------------------------------------

TEST(ShmRing, AcquireExhaustReleaseReacquire) {
  Ring ring(4, 1024);
  EXPECT_EQ(ring.slots(), 4);
  EXPECT_EQ(ring.free_slots(), 4);
  int slots[4];
  for (int& s : slots) {
    s = ring.try_acquire();
    ASSERT_GE(s, 0);
  }
  EXPECT_EQ(ring.free_slots(), 0);
  EXPECT_EQ(ring.try_acquire(), -1);  // full → RDMA fallback signal
  // Out-of-order release: slot 2 frees first and is the next acquired.
  ring.release(slots[2]);
  EXPECT_EQ(ring.free_slots(), 1);
  EXPECT_EQ(ring.try_acquire(), slots[2]);
}

TEST(ShmRing, ClampsSlotsAndChunkBytes) {
  Ring tiny(0, 16);
  EXPECT_EQ(tiny.slots(), 1);
  EXPECT_EQ(tiny.chunk_bytes(), 256);  // floor: one cache-line-ish request
  Ring wide(100, 1 << 20);
  EXPECT_EQ(wide.slots(), 64);  // one bitmask word
  EXPECT_EQ(wide.free_slots(), 64);
}

TEST(ShmRing, ChunksAreExclusivePerSlot) {
  Ring ring(8, 512);
  const auto a = ring.chunk(0);
  const auto b = ring.chunk(1);
  EXPECT_EQ(a.size(), 512u);
  EXPECT_EQ(b.data(), a.data() + 512);  // contiguous arena, disjoint chunks
}

TEST(ShmRing, PublishedBytesReadBack) {
  Ring ring(2, 512);
  const int s = ring.try_acquire();
  ASSERT_GE(s, 0);
  EXPECT_EQ(ring.published_bytes(s), 0);  // acquisition resets the doorbell
  ring.publish(s, 77);
  EXPECT_EQ(ring.published_bytes(s), 77);
}

TEST(ShmRing, SlotHandleReleasesOnDestructionAndMove) {
  Ring ring(2, 512);
  {
    SlotHandle h(&ring, ring.try_acquire());
    ASSERT_TRUE(h.valid());
    EXPECT_EQ(ring.free_slots(), 1);
    SlotHandle moved = std::move(h);
    EXPECT_FALSE(h.valid());  // NOLINT(bugprone-use-after-move): moved-from is empty
    EXPECT_TRUE(moved.valid());
    EXPECT_EQ(ring.free_slots(), 1);  // a move never double-releases
  }
  EXPECT_EQ(ring.free_slots(), 2);  // destruction returned the slot
  SlotHandle empty;
  EXPECT_FALSE(empty.valid());
  empty.reset();  // reset on an empty handle is a no-op
  EXPECT_EQ(ring.free_slots(), 2);
}

// ---------------------------------------------------------------------------
// Transport: pod topology + per-container opt-out policy
// ---------------------------------------------------------------------------

TEST(ShmTransport, PodLocalityFollowsPolicy) {
  ShmPolicy same_node;
  same_node.enabled = true;  // pod_nodes = 1: same node only
  Transport t1(Topology(4, 1), same_node);
  EXPECT_TRUE(t1.pod_local(2, 2));
  EXPECT_FALSE(t1.pod_local(0, 1));

  ShmPolicy pods;
  pods.enabled = true;
  pods.pod_nodes = 2;  // pods {0,1} and {2,3}
  Transport t2(Topology(4, 1), pods);
  EXPECT_TRUE(t2.pod_local(0, 1));
  EXPECT_TRUE(t2.pod_local(2, 3));
  EXPECT_FALSE(t2.pod_local(1, 2));  // adjacent nodes, different pods
}

TEST(ShmTransport, NormalizeClampsPolicy) {
  ShmPolicy p;
  p.pod_nodes = -3;
  p.ring_slots = 1000;
  p.chunk_bytes = 1;
  const ShmPolicy n = shm::normalize(p);
  EXPECT_EQ(n.pod_nodes, 1);
  EXPECT_EQ(n.ring_slots, 64);
  EXPECT_EQ(n.chunk_bytes, 256);
}

TEST(ShmTransport, DenyListRoutesFuncsToWire) {
  ShmPolicy p;
  p.enabled = true;
  Transport t(Topology(2, 1), p);
  EXPECT_TRUE(t.allows(7));  // nothing denied: single relaxed load
  t.deny(7);
  EXPECT_FALSE(t.allows(7));
  EXPECT_TRUE(t.allows(8));
}

TEST(ShmTransport, TryAcquireReturnsInvalidWhenFull) {
  ShmPolicy p;
  p.enabled = true;
  p.ring_slots = 1;
  Transport t(Topology(2, 1), p);
  SlotHandle a = t.try_acquire(1);
  ASSERT_TRUE(a.valid());
  SlotHandle b = t.try_acquire(1);
  EXPECT_FALSE(b.valid());
  EXPECT_TRUE(t.try_acquire(0).valid());  // rings are per destination node
}

// ---------------------------------------------------------------------------
// Engine integration: pod-local ops ride the ring
// ---------------------------------------------------------------------------

TracePolicy trace_on() {
  TracePolicy p;
  p.enabled = true;
  p.sample_every = 1;
  return p;
}

ShmPolicy pod2_policy(int ring_slots = 4, std::int64_t chunk_bytes = 64 << 10) {
  ShmPolicy p;
  p.enabled = true;
  p.pod_nodes = 2;  // both fabric nodes share one pod
  p.ring_slots = ring_slots;
  p.chunk_bytes = chunk_bytes;
  return p;
}

struct ShmEngineTest : ::testing::Test {
  ShmEngineTest()
      : fabric(Topology(2, 2), CostModel::ares()),
        engine(fabric),
        transport(Topology(2, 2), pod2_policy()) {
    engine.set_shm(&transport);
  }
  fabric::Fabric fabric;
  Engine engine;
  Transport transport;
};

TEST_F(ShmEngineTest, ScalarRidesRingWithZeroWirePackets) {
  const FuncId echo =
      engine.bind<int, int>([](ServerCtx&, const int& v) { return v; });
  Actor client(0, 0, 1);
  EXPECT_EQ((engine.invoke<int>(client, 1, echo, 42)), 42);
  const auto& c = fabric.nic(1).counters();
  EXPECT_EQ(c.shm_sends.load(), 1);
  EXPECT_EQ(c.rpc_count.load(), 1);  // it is still an RPC — tier split only
  EXPECT_GT(c.shm_bytes.load(), 0);
  EXPECT_EQ(c.total_packets.load(), 0);   // nothing crossed the wire
  EXPECT_EQ(c.total_bytes.load(), 0);     // arena bytes are not wire bytes
  EXPECT_EQ(c.shm_ring_full_fallbacks.load(), 0);
  EXPECT_EQ(transport.ring(1).free_slots(), transport.policy().ring_slots);
}

TEST_F(ShmEngineTest, ShmFloorBeatsRdmaScalarPath) {
  // Same tiny op, twin fabrics: one engine with the tier, one without. The
  // shm path must undercut the RDMA scalar path by at least the A11
  // acceptance floor (3x) for small pod-local ops.
  fabric::Fabric wire_fabric(Topology(2, 2), CostModel::ares());
  Engine wire_engine(wire_fabric);
  const FuncId shm_echo =
      engine.bind<int, int>([](ServerCtx&, const int& v) { return v; });
  const FuncId wire_echo =
      wire_engine.bind<int, int>([](ServerCtx&, const int& v) { return v; });
  Actor shm_client(0, 0, 1), wire_client(0, 0, 1);
  constexpr int kOps = 64;
  for (int i = 0; i < kOps; ++i) {
    EXPECT_EQ((engine.invoke<int>(shm_client, 1, shm_echo, i)), i);
    EXPECT_EQ((wire_engine.invoke<int>(wire_client, 1, wire_echo, i)), i);
  }
  EXPECT_LT(shm_client.now() * 3, wire_client.now());
}

TEST_F(ShmEngineTest, FullRingFallsBackToWireAndCounts) {
  const FuncId echo =
      engine.bind<int, int>([](ServerCtx&, const int& v) { return v; });
  // Hold every slot of node 1's ring so the send finds it full.
  std::vector<SlotHandle> hogs;
  for (int i = 0; i < transport.policy().ring_slots; ++i) {
    hogs.push_back(transport.try_acquire(1));
    ASSERT_TRUE(hogs.back().valid());
  }
  Actor client(0, 0, 1);
  EXPECT_EQ((engine.invoke<int>(client, 1, echo, 5)), 5);  // still succeeds
  const auto& c = fabric.nic(1).counters();
  EXPECT_EQ(c.shm_ring_full_fallbacks.load(), 1);
  EXPECT_EQ(c.shm_sends.load(), 0);
  EXPECT_EQ(c.rpc_count.load(), 1);
  EXPECT_GT(c.total_packets.load(), 0);  // the fallback crossed the wire
}

TEST_F(ShmEngineTest, OversizePayloadRidesWireWithoutFallbackCount) {
  // A transport with minimum chunks: any non-trivial payload is oversize
  // for the ring. That is an eligibility miss, not a ring-full fallback.
  Transport small(Topology(2, 2), pod2_policy(/*ring_slots=*/4,
                                              /*chunk_bytes=*/1));
  engine.set_shm(&small);
  const FuncId len = engine.bind<int, std::string>(
      [](ServerCtx&, const std::string& s) { return static_cast<int>(s.size()); });
  Actor client(0, 0, 1);
  const std::string big(4096, 'x');
  EXPECT_EQ((engine.invoke<int>(client, 1, len, big)), 4096);
  const auto& c = fabric.nic(1).counters();
  EXPECT_EQ(c.shm_sends.load(), 0);
  EXPECT_EQ(c.shm_ring_full_fallbacks.load(), 0);
  EXPECT_GT(c.total_packets.load(), 0);
  EXPECT_EQ(small.ring(1).free_slots(), 4);  // the probed slot was returned
}

TEST_F(ShmEngineTest, DeniedFuncRidesWire) {
  const FuncId echo =
      engine.bind<int, int>([](ServerCtx&, const int& v) { return v; });
  transport.deny(echo);
  Actor client(0, 0, 1);
  EXPECT_EQ((engine.invoke<int>(client, 1, echo, 9)), 9);
  const auto& c = fabric.nic(1).counters();
  EXPECT_EQ(c.shm_sends.load(), 0);
  EXPECT_GT(c.total_packets.load(), 0);
}

TEST_F(ShmEngineTest, DegradedPodFallsBackUntilRestored) {
  auto plan = std::make_shared<fabric::FaultPlan>(1);
  fabric.set_fault_plan(plan);
  const FuncId echo =
      engine.bind<int, int>([](ServerCtx&, const int& v) { return v; });
  Actor client(0, 0, 1);
  plan->degrade_shm(1);  // destination's memory domain is fenced off
  EXPECT_EQ((engine.invoke<int>(client, 1, echo, 1)), 1);
  const auto& c = fabric.nic(1).counters();
  EXPECT_EQ(c.shm_sends.load(), 0);  // rode the wire while degraded
  plan->restore_shm(1);
  EXPECT_EQ((engine.invoke<int>(client, 1, echo, 2)), 2);
  EXPECT_EQ(c.shm_sends.load(), 1);  // back on the ring
}

TEST_F(ShmEngineTest, RetriesRedoorbellTheSameSlot) {
  auto plan = std::make_shared<fabric::FaultPlan>(7);
  fabric::FaultProbabilities p;
  p.unavailable = 0.4;
  plan->set(fabric::OpClass::kRpc, p);
  fabric.set_fault_plan(plan);
  const FuncId echo =
      engine.bind<int, int>([](ServerCtx&, const int& v) { return v; });
  InvokeOptions opts;
  opts.max_retries = 8;
  Actor client(0, 0, 1);
  constexpr int kOps = 100;
  for (int i = 0; i < kOps; ++i) {
    EXPECT_EQ((engine.invoke_opt<int>(client, 1, echo, opts, i)), i);
  }
  const auto& c = fabric.nic(1).counters();
  // Every attempt (first sends and re-doorbells alike) stayed on the ring:
  // the send-side counters agree, and faults really fired.
  EXPECT_EQ(c.shm_sends.load(), c.rpc_count.load());
  EXPECT_GT(c.rpc_count.load(), kOps);
  EXPECT_EQ(c.total_packets.load(), 0);
  EXPECT_EQ(transport.ring(1).free_slots(), transport.policy().ring_slots);
}

TEST_F(ShmEngineTest, ChainRidesRingInOneDelivery) {
  const FuncId produce =
      engine.bind<int, int>([](ServerCtx&, const int& v) { return v * 2; });
  const FuncId add_ten = engine.bind_raw(
      [](ServerCtx&, std::span<const std::byte> prev) -> std::vector<std::byte> {
        serial::InArchive in(prev);
        int v;
        serial::load(in, v);
        serial::OutArchive out;
        serial::save(out, v + 10);
        return out.take();
      });
  Actor client(0, 0, 1);
  EXPECT_EQ((engine.invoke_chain<int>(client, 1, produce, {add_ten}, 5)), 20);
  const auto& c = fabric.nic(1).counters();
  EXPECT_EQ(c.shm_sends.load(), 1);  // one doorbell despite two stages
  EXPECT_EQ(c.rpc_count.load(), 1);
  EXPECT_EQ(c.total_packets.load(), 0);
}

TEST_F(ShmEngineTest, BatchBundleRidesRing) {
  const FuncId echo =
      engine.bind<int, int>([](ServerCtx&, const int& v) { return v; });
  rpc::BatchPolicy policy;
  policy.max_ops = 64;
  policy.max_delay_ns = 0;
  rpc::Batcher batcher(engine, policy);
  Actor client(0, 0, 1);
  std::vector<rpc::Future<int>> futures;
  for (int i = 0; i < 8; ++i) {
    futures.push_back(batcher.enqueue<int>(client, 1, echo, i));
  }
  batcher.flush(client, 1);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(futures[i].get(client), i);
  const auto& c = fabric.nic(1).counters();
  EXPECT_EQ(c.shm_sends.load(), 1);  // ONE bundle, one doorbell
  EXPECT_EQ(c.rpc_batches.load(), 1);
  EXPECT_EQ(c.rpc_batched_ops.load(), 8);
  EXPECT_EQ(c.total_packets.load(), 0);  // request and pulls all local
}

TEST_F(ShmEngineTest, ReplicationFanOutRidesRingWithoutRpcCount) {
  std::atomic<int> replicas{0};
  const FuncId replicate =
      engine.bind<void, int>([&](ServerCtx&, const int&) { replicas.fetch_add(1); });
  const FuncId primary = engine.bind<int, int>(
      [&, replicate](ServerCtx& ctx, const int& v) {
        engine.server_invoke(ctx.node, 0, ctx.finish, replicate, v);
        return v;
      });
  Actor client(1, 1, 1);  // client co-located with the primary on node 1
  EXPECT_EQ((engine.invoke<int>(client, 1, primary, 3)), 3);
  fabric.drain_all();
  EXPECT_EQ(replicas.load(), 1);
  const auto& c = fabric.nic(0).counters();
  // The fan-out rode node 0's ring but is not a client RPC: shm_sends only.
  EXPECT_EQ(c.shm_sends.load(), 1);
  EXPECT_EQ(c.rpc_count.load(), 0);
  EXPECT_EQ(c.total_packets.load(), 0);
}

// ---------------------------------------------------------------------------
// Tracing: kShm spans reconcile exactly against fabric counters
// ---------------------------------------------------------------------------

TEST_F(ShmEngineTest, ShmSpanStagesAndReconciliation) {
  Tracer tracer(trace_on(), 2);
  engine.set_tracer(&tracer);
  constexpr Nanos kWork = 500;
  const FuncId busy = engine.bind<int>([](ServerCtx& ctx) {
    ctx.finish = ctx.start + kWork;
    return 1;
  });
  Actor client(0, 0, 1);
  EXPECT_EQ((engine.invoke<int>(client, 1, busy)), 1);

  const auto spans = tracer.spans();
  ASSERT_EQ(spans.size(), 1u);
  const Span& s = *spans[0];
  const auto& m = fabric.model();
  EXPECT_EQ(s.kind, SpanKind::kShm);  // scalar upgraded to the shm kind
  EXPECT_EQ(s.inject_done_ns, m.shm_doorbell_ns);
  EXPECT_EQ(s.dispatch_ns, m.shm_dispatch_ns);
  EXPECT_EQ(s.exec_start_ns, s.arrival_ns + m.shm_dispatch_ns);  // no queue
  EXPECT_EQ(s.handler_end_ns, s.exec_start_ns + kWork);
  EXPECT_EQ(s.request_packets, 0);
  EXPECT_EQ(s.pull_packets, 0);
  // Exact reconciliation: tracer stage sums == fabric busy counters, and the
  // packet sums agree (both zero — nothing crossed the wire).
  EXPECT_EQ(tracer.accounted_handler_ns(1),
            fabric.nic(1).counters().handler_busy_ns.load());
  EXPECT_EQ(tracer.latency_histogram(1, SpanKind::kShm).count(), 1);
  EXPECT_EQ(tracer.latency_histogram(1, SpanKind::kScalar).count(), 0);
}

// ---------------------------------------------------------------------------
// Context wiring: Config.shm, per-container opt-out
// ---------------------------------------------------------------------------

Context::Config shm_config(int nodes, int procs) {
  Context::Config cfg;
  cfg.num_nodes = nodes;
  cfg.procs_per_node = procs;
  cfg.shm.enabled = true;
  cfg.shm.pod_nodes = nodes;  // whole cluster is one pod
  return cfg;
}

TEST(ShmContext, ContainerTrafficRidesRing) {
  Context ctx(shm_config(2, 2));
  ASSERT_NE(ctx.shm_transport(), nullptr);
  unordered_map<int, int> map(ctx);
  ctx.run([&](Actor& self) {
    for (int i = 0; i < 16; ++i) {
      ASSERT_TRUE(map.insert(self.rank() * 100 + i, i));
    }
  });
  std::int64_t shm_sends = 0;
  for (int n = 0; n < 2; ++n) {
    shm_sends += ctx.fabric().nic(n).counters().shm_sends.load();
  }
  EXPECT_GT(shm_sends, 0);
}

TEST(ShmContext, PerContainerOptOutRoutesToWire) {
  Context ctx(shm_config(2, 2));
  core::ContainerOptions options;
  options.shm.enabled = false;  // this container opts out of the tier
  unordered_map<int, int> map(ctx, options);
  ctx.run([&](Actor& self) {
    for (int i = 0; i < 16; ++i) {
      ASSERT_TRUE(map.insert(self.rank() * 100 + i, i));
    }
    int v = -1;
    ASSERT_TRUE(map.find(self.rank() * 100, &v));
  });
  for (int n = 0; n < 2; ++n) {
    EXPECT_EQ(ctx.fabric().nic(n).counters().shm_sends.load(), 0) << n;
  }
}

TEST(ShmContext, DisabledTierLeavesTransportNull) {
  Context::Config cfg;
  cfg.num_nodes = 2;
  cfg.procs_per_node = 1;
  cfg.shm = ShmPolicy{};  // force-off regardless of the process environment
  Context ctx(cfg);
  EXPECT_EQ(ctx.shm_transport(), nullptr);
  core::ContainerOptions options;
  options.shm.enabled = false;  // opt-out registration must be a no-op
  unordered_map<int, int> map(ctx, options);
  ctx.run([&](Actor& self) { ASSERT_TRUE(map.insert(self.rank(), 1)); });
}

}  // namespace
}  // namespace hcl
