// Replica failover & recovery (DESIGN.md §5f): kill a server, ops re-route
// to the promoted replica (reads AND writes, scalar AND batched), rejoin
// replays the promoted journal into the primary before it resumes
// ownership, and the fenced epoch stream keeps cached leases from serving
// pre-failover values.
#include "core/ordered_map.h"
#include "core/priority_queue.h"
#include "core/queue.h"
#include "core/unordered_map.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "fabric/fault_plan.h"

namespace hcl {
namespace {

using fabric::FaultPlan;
using sim::Actor;
using sim::CostModel;

Context::Config zero_config(int nodes, int procs,
                            std::shared_ptr<FaultPlan> plan) {
  Context::Config cfg;
  cfg.num_nodes = nodes;
  cfg.procs_per_node = procs;
  cfg.model = CostModel::zero();
  cfg.fault_plan = std::move(plan);
  return cfg;
}

/// First key >= lo whose partition is `p`.
template <typename Map>
int key_in_partition(const Map& m, int p, int lo = 0) {
  for (int k = lo;; ++k) {
    if (m.partition_of(k) == p) return k;
  }
}

// ---------------------------------------------------------------------------
// unordered_map: the full kill -> promote -> rejoin -> repair arc.
// ---------------------------------------------------------------------------

TEST(Failover, UnorderedMapKillPromoteRejoinRepair) {
  auto plan = std::make_shared<FaultPlan>(1);
  Context ctx(zero_config(3, 1, plan));
  unordered_map<int, int> m(ctx, {.num_partitions = 3, .replication = 1});
  // Partition 1 lives on node 1; its standby is partition 2 on node 2.
  ASSERT_EQ(m.partition_owner(1), 1);
  const int ka = key_in_partition(m, 1);
  const int kb = key_in_partition(m, 1, ka + 1);
  const int kc = key_in_partition(m, 1, kb + 1);

  ctx.run([&](Actor& self) {
    if (self.rank() != 0) return;
    EXPECT_TRUE(m.insert(ka, 100));
    EXPECT_TRUE(m.insert(kc, 300));
  });

  plan->fail_node(1);
  ctx.run([&](Actor& self) {
    if (self.rank() != 0) return;  // ranks on the dead node stay quiet
    int v = 0;
    EXPECT_TRUE(m.find(ka, &v));  // replica serves the pre-kill value
    EXPECT_EQ(v, 100);
    EXPECT_FALSE(m.upsert(ka, 200));  // overwrite (not fresh), via standby
    EXPECT_TRUE(m.insert(kb, 400));   // fresh insert while down
    EXPECT_TRUE(m.erase(kc));         // erase while down
    EXPECT_TRUE(m.find(ka, &v));
    EXPECT_EQ(v, 200);
    EXPECT_FALSE(m.find(kc, &v));
  });
  EXPECT_TRUE(m.partition_promoted(1));
  EXPECT_GE(m.repair_backlog(1), 3u);
  EXPECT_GT(ctx.fabric().nic(2).counters().failovers.load(), 0);
  EXPECT_GT(plan->counters().node_down_rejections.load(), 0);

  plan->rejoin_node(1);
  ctx.run([&](Actor& self) {
    if (self.rank() != 0) return;
    m.heal(self);
    int v = 0;
    EXPECT_TRUE(m.find(ka, &v));  // now answered by the repaired primary
    EXPECT_EQ(v, 200);
    EXPECT_TRUE(m.find(kb, &v));
    EXPECT_EQ(v, 400);
    EXPECT_FALSE(m.find(kc, &v));
  });
  EXPECT_FALSE(m.partition_promoted(1));
  EXPECT_EQ(m.repair_backlog(1), 0u);
  // The repaired primary adopted an epoch above the failover fence
  // (term << 32), so no epoch it ever issued can collide with the
  // promoted stream.
  EXPECT_GT(m.partition_epoch(1), std::uint64_t{1} << 32);
  EXPECT_GT(ctx.fabric().nic(1).counters().repair_ops.load(), 0);
}

TEST(Failover, UnorderedMapBatchedOpsRescuedMidBundle) {
  auto plan = std::make_shared<FaultPlan>(2);
  Context ctx(zero_config(3, 1, plan));
  unordered_map<int, int> m(ctx,
                            {.num_partitions = 3,
                             .replication = 1,
                             .batch = {.max_ops = 8, .max_bytes = 1 << 20,
                                       .max_delay_ns = 1'000'000}});
  std::vector<int> keys;
  for (int i = 0; static_cast<int>(keys.size()) < 6; ++i) {
    if (m.partition_of(i) == 1) keys.push_back(i);
  }
  std::vector<int> values(keys.size(), 7);

  // Route is still marked up when the bundle ships, so it targets the
  // dead primary; the settle loop's rescue hook must re-issue every
  // constituent against the standby.
  plan->fail_node(1);
  ctx.run([&](Actor& self) {
    if (self.rank() != 0) return;
    auto landed = m.insert_batch(keys, values);
    for (bool ok : landed) EXPECT_TRUE(ok);
    auto found = m.find_batch(keys);
    for (std::size_t i = 0; i < found.size(); ++i) {
      ASSERT_TRUE(found[i].has_value());
      EXPECT_EQ(*found[i], 7);
    }
  });
  EXPECT_TRUE(m.partition_promoted(1));

  plan->rejoin_node(1);
  ctx.run([&](Actor& self) {
    if (self.rank() != 0) return;
    m.heal(self);
    auto found = m.find_batch(keys);  // repaired primary has every element
    for (const auto& f : found) {
      ASSERT_TRUE(f.has_value());
      EXPECT_EQ(*f, 7);
    }
  });
  EXPECT_FALSE(m.partition_promoted(1));
}

TEST(Failover, NoReplicationMeansUnavailable) {
  auto plan = std::make_shared<FaultPlan>(3);
  Context ctx(zero_config(2, 1, plan));
  unordered_map<int, int> m(ctx, {.num_partitions = 2});  // replication = 0
  const int k = key_in_partition(m, 1);
  plan->fail_node(1);
  ctx.run([&](Actor& self) {
    if (self.rank() != 0) return;
    try {
      int v;
      m.find(k, &v);
      FAIL() << "find against a dead, unreplicated partition must throw";
    } catch (const HclError& e) {
      EXPECT_EQ(e.code(), StatusCode::kUnavailable);
    }
  });
  plan->rejoin_node(1);
}

// ---------------------------------------------------------------------------
// ordered map.
// ---------------------------------------------------------------------------

TEST(Failover, OrderedMapKillPromoteRejoinRepair) {
  auto plan = std::make_shared<FaultPlan>(4);
  Context ctx(zero_config(3, 1, plan));
  map<int, int> m(ctx, {.num_partitions = 3, .replication = 1});
  const int ka = key_in_partition(m, 1);
  const int kb = key_in_partition(m, 1, ka + 1);

  ctx.run([&](Actor& self) {
    if (self.rank() != 0) return;
    EXPECT_TRUE(m.insert(ka, 10));
  });

  plan->fail_node(1);
  ctx.run([&](Actor& self) {
    if (self.rank() != 0) return;
    int v = 0;
    EXPECT_TRUE(m.find(ka, &v));
    EXPECT_EQ(v, 10);
    EXPECT_TRUE(m.insert(kb, 20));
    EXPECT_TRUE(m.erase(ka));
  });
  EXPECT_TRUE(m.partition_promoted(1));

  plan->rejoin_node(1);
  ctx.run([&](Actor& self) {
    if (self.rank() != 0) return;
    m.heal(self);
    int v = 0;
    EXPECT_FALSE(m.find(ka, &v));
    EXPECT_TRUE(m.find(kb, &v));
    EXPECT_EQ(v, 20);
  });
  EXPECT_FALSE(m.partition_promoted(1));
  EXPECT_GT(m.partition_epoch(1), std::uint64_t{1} << 32);
}

// ---------------------------------------------------------------------------
// queue: FIFO order must survive promotion and repair.
// ---------------------------------------------------------------------------

TEST(Failover, QueueFifoOrderSurvivesKillAndRejoin) {
  auto plan = std::make_shared<FaultPlan>(5);
  Context ctx(zero_config(2, 1, plan));
  queue<int> q(ctx, {.replication = 1});  // host node 0, mirror on node 1
  ASSERT_EQ(q.standby_node(), 1);

  ctx.run([&](Actor& self) {
    if (self.node() != 1) return;  // remote client only
    for (int i = 0; i < 5; ++i) EXPECT_TRUE(q.push(i));
  });
  EXPECT_EQ(q.mirror_size(), 5u);  // lock-step mirror

  plan->fail_node(0);
  ctx.run([&](Actor& self) {
    if (self.node() != 1) return;
    for (int i = 5; i < 10; ++i) EXPECT_TRUE(q.push(i));  // promoted pushes
    int v = -1;
    EXPECT_TRUE(q.pop(&v));  // FIFO front, served by the mirror
    EXPECT_EQ(v, 0);
  });
  EXPECT_TRUE(q.promoted());
  EXPECT_EQ(q.repair_backlog(), 6u);  // 5 pushes + 1 pop

  plan->rejoin_node(0);
  ctx.run([&](Actor& self) {
    if (self.node() != 1) return;
    q.heal(self);
    for (int expect = 1; expect < 10; ++expect) {  // converged, in order
      int v = -1;
      EXPECT_TRUE(q.pop(&v));
      EXPECT_EQ(v, expect);
    }
    int v;
    EXPECT_FALSE(q.pop(&v));
  });
  EXPECT_FALSE(q.promoted());
  EXPECT_TRUE(q.empty());
}

TEST(Failover, QueuePushBatchReroutesWhileDown) {
  auto plan = std::make_shared<FaultPlan>(6);
  Context ctx(zero_config(2, 1, plan));
  queue<int> q(ctx, {.replication = 1,
                     .batch = {.max_ops = 4, .max_bytes = 1 << 20,
                               .max_delay_ns = 1'000'000}});
  plan->fail_node(0);
  ctx.run([&](Actor& self) {
    if (self.node() != 1) return;
    auto landed = q.push_batch({1, 2, 3, 4, 5});
    for (bool ok : landed) EXPECT_TRUE(ok);
  });
  EXPECT_TRUE(q.promoted());
  plan->rejoin_node(0);
  ctx.run([&](Actor& self) {
    if (self.node() != 1) return;
    q.heal(self);
    for (int expect = 1; expect <= 5; ++expect) {
      int v = -1;
      EXPECT_TRUE(q.pop(&v));
      EXPECT_EQ(v, expect);
    }
  });
  EXPECT_EQ(q.size(), 0u);
}

// ---------------------------------------------------------------------------
// priority queue: pop-min identity must survive promotion and repair.
// ---------------------------------------------------------------------------

TEST(Failover, PriorityQueueMinOrderSurvivesKillAndRejoin) {
  auto plan = std::make_shared<FaultPlan>(7);
  Context ctx(zero_config(2, 1, plan));
  priority_queue<int> pq(ctx, {.replication = 1});

  ctx.run([&](Actor& self) {
    if (self.node() != 1) return;
    for (int v : {30, 10, 50}) EXPECT_TRUE(pq.push(v));
  });
  EXPECT_EQ(pq.mirror_size(), 3u);

  plan->fail_node(0);
  ctx.run([&](Actor& self) {
    if (self.node() != 1) return;
    EXPECT_TRUE(pq.push(20));
    int v = -1;
    EXPECT_TRUE(pq.pop(&v));  // min of {30,10,50,20} from the mirror
    EXPECT_EQ(v, 10);
  });
  EXPECT_TRUE(pq.promoted());

  plan->rejoin_node(0);
  ctx.run([&](Actor& self) {
    if (self.node() != 1) return;
    pq.heal(self);
    for (int expect : {20, 30, 50}) {
      int v = -1;
      EXPECT_TRUE(pq.pop(&v));
      EXPECT_EQ(v, expect);
    }
  });
  EXPECT_FALSE(pq.promoted());
  EXPECT_TRUE(pq.empty());
}

// ---------------------------------------------------------------------------
// Cache coherence across failover: the promoted epoch stream is fenced at
// (term << 32), so one response from the promoted replica makes every
// lease taken on the dead primary's epochs stale.
// ---------------------------------------------------------------------------

TEST(Failover, PromotedEpochFenceStalesCachedLeases) {
  auto plan = std::make_shared<FaultPlan>(8);
  Context ctx(zero_config(3, 1, plan));
  unordered_map<int, int> m(
      ctx, {.num_partitions = 3,
            .replication = 1,
            .cache = {.capacity = 64,
                      .ttl_ns = 1'000'000'000,  // lease never expires here
                      .mode = cache::CacheMode::kInvalidate}});
  const int ka = key_in_partition(m, 1);
  const int kb = key_in_partition(m, 1, ka + 1);

  // Single phase: barriers revoke leases, so the whole arc runs inside
  // one run() on one rank.
  ctx.run([&](Actor& self) {
    if (self.rank() != 0) return;
    ASSERT_TRUE(m.insert(ka, 1));
    int v = 0;
    ASSERT_TRUE(m.find(ka, &v));  // miss, fills the cache
    ASSERT_TRUE(m.find(ka, &v));  // hit from the lease
    EXPECT_GE(m.cache_stats().hits, 1);

    plan->fail_node(1);
    // Write a DIFFERENT key through the promoted replica: the response
    // carries the fenced epoch, which must invalidate ka's lease.
    ASSERT_TRUE(m.upsert(kb, 2));
    const auto stale_before = m.cache_stats().stale_reads;
    ASSERT_TRUE(m.find(ka, &v));  // fenced epoch forces revalidation
    EXPECT_EQ(v, 1);              // replica still serves the right value
    EXPECT_GT(m.cache_stats().stale_reads, stale_before);
    plan->rejoin_node(1);
    m.heal(self);
  });
}

// ---------------------------------------------------------------------------
// Regression for the Context::run barrier contract (src/core/context.h):
// replication fan-outs execute inline on the mutating rank's thread, so
// every replica write and epoch bump has been applied by the time run()
// joins — the next phase's epoch piggyback comparisons start consistent.
// ---------------------------------------------------------------------------

TEST(Failover, BarrierQuiescesReplicationBeforeJoin) {
  Context ctx(zero_config(2, 1, nullptr));
  unordered_map<int, int> m(ctx, {.num_partitions = 2, .replication = 1});
  const int k = key_in_partition(m, 0);
  const std::uint64_t replica_epoch_before = m.partition_epoch(1);
  ctx.run([&](Actor& self) {
    if (self.node() != 1) return;  // remote writer: real RPC + fan-out
    EXPECT_TRUE(m.insert(k, 42));
  });
  // Immediately after the barrier, no drain: the replica store holds the
  // fanned-out write and its epoch bump is visible.
  EXPECT_EQ(m.replica_size(1), 1u);
  EXPECT_GT(m.partition_epoch(1), replica_epoch_before);
}

}  // namespace
}  // namespace hcl
