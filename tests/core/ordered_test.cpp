#include "core/ordered_map.h"

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <string>
#include <vector>

#include "core/sets.h"
#include "fabric/fault_plan.h"

namespace hcl {
namespace {

using sim::Actor;
using sim::CostModel;

Context::Config zero_config(int nodes, int procs) {
  Context::Config cfg;
  cfg.num_nodes = nodes;
  cfg.procs_per_node = procs;
  cfg.model = CostModel::zero();
  return cfg;
}

TEST(OrderedMap, InsertFindEraseAcrossRanks) {
  Context ctx(zero_config(4, 2));
  map<int, std::string> m(ctx);
  ctx.run([&](Actor& self) {
    for (int i = 0; i < 16; ++i) {
      ASSERT_TRUE(m.insert(self.rank() * 100 + i, std::to_string(self.rank())));
    }
  });
  ctx.run([&](Actor& self) {
    const int other = (self.rank() + 3) % ctx.topology().num_ranks();
    std::string v;
    ASSERT_TRUE(m.find(other * 100 + 5, &v));
    EXPECT_EQ(v, std::to_string(other));
  });
  ctx.run_one(0, [&](Actor&) {
    EXPECT_TRUE(m.erase(5));
    EXPECT_FALSE(m.contains(5));
  });
}

TEST(OrderedMap, GloballyOrderedIteration) {
  Context ctx(zero_config(4, 1));
  map<int, int> m(ctx);
  ctx.run([&](Actor& self) {
    for (int i = 0; i < 64; ++i) m.insert(self.rank() + i * 4, i);
  });
  int prev = -1;
  std::size_t count = 0;
  m.for_each_ordered([&](const int& k, const int&) {
    EXPECT_GT(k, prev);
    prev = k;
    ++count;
  });
  EXPECT_EQ(count, 4u * 64u);
}

TEST(OrderedMap, CustomComparator) {
  Context ctx(zero_config(2, 1));
  map<int, int, std::greater<int>> m(ctx);
  ctx.run_one(0, [&](Actor&) {
    for (int k : {3, 1, 2}) m.insert(k, k);
  });
  std::vector<int> order;
  m.for_each_ordered([&](const int& k, const int&) { order.push_back(k); });
  EXPECT_EQ(order, (std::vector<int>{3, 2, 1}));
}

TEST(OrderedMap, OrderedCostsMoreThanUnorderedWouldLocally) {
  // The Table I log N term: inserting into a populated ordered partition
  // costs more simulated time than into an empty one.
  Context::Config cfg;
  cfg.num_nodes = 1;
  cfg.procs_per_node = 1;
  Context ctx(cfg);
  map<int, int> m(ctx);
  sim::Nanos first_cost = 0, later_cost = 0;
  ctx.run_one(0, [&](Actor& self) {
    const sim::Nanos t0 = self.now();
    m.insert(0, 0);
    first_cost = self.now() - t0;
    for (int i = 1; i < 5000; ++i) m.insert(i, i);
    const sim::Nanos t1 = self.now();
    m.insert(99'999, 1);
    later_cost = self.now() - t1;
  });
  EXPECT_GT(later_cost, first_cost);
}

TEST(OrderedMap, AsyncOps) {
  Context ctx(zero_config(2, 1));
  map<int, int> m(ctx);
  ctx.run_one(0, [&](Actor& self) {
    auto f = m.async_insert(1, 10);
    EXPECT_TRUE(f.get(self));
    auto g = m.async_find(1);
    auto v = g.get(self);
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, 10);
  });
}

TEST(OrderedMap, ResizeCharge) {
  Context ctx(zero_config(2, 1));
  map<int, int> m(ctx);
  ctx.run_one(0, [&](Actor&) {
    for (int i = 0; i < 10; ++i) m.insert(i, i);
    EXPECT_TRUE(m.resize(0, 1024));
    EXPECT_FALSE(m.resize(-1, 1024));
    EXPECT_FALSE(m.resize(99, 1024));
  });
}

TEST(OrderedMap, PersistenceRecovers) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "hcl_omap_persist").string();
  for (int p = 0; p < 4; ++p) std::filesystem::remove(path + ".p" + std::to_string(p));
  {
    Context ctx(zero_config(2, 1));
    core::ContainerOptions options;
    options.persist_path = path;
    map<int, int> m(ctx, options);
    ctx.run_one(0, [&](Actor&) {
      for (int i = 0; i < 20; ++i) m.insert(i, i * 3);
      m.erase(4);
    });
  }
  {
    Context ctx(zero_config(2, 1));
    core::ContainerOptions options;
    options.persist_path = path;
    map<int, int> m(ctx, options);
    EXPECT_EQ(m.size(), 19u);
    ctx.run_one(0, [&](Actor&) {
      int v;
      ASSERT_TRUE(m.find(17, &v));
      EXPECT_EQ(v, 51);
      EXPECT_FALSE(m.contains(4));
    });
  }
  for (int p = 0; p < 4; ++p) std::filesystem::remove(path + ".p" + std::to_string(p));
}

TEST(OrderedMap, ReplicationLands) {
  Context ctx(zero_config(4, 1));
  core::ContainerOptions options;
  options.replication = 2;
  map<int, int> m(ctx, options);
  ctx.run([&](Actor& self) { m.insert(self.rank(), self.rank()); });
  std::size_t replicas = 0;
  for (int p = 0; p < m.num_partitions(); ++p) replicas += m.replica_size(p);
  EXPECT_EQ(replicas, 4u * 2u);
}

TEST(UnorderedSet, BasicMembership) {
  Context ctx(zero_config(2, 2));
  unordered_set<std::string> s(ctx);
  ctx.run([&](Actor& self) {
    EXPECT_TRUE(s.insert("rank-" + std::to_string(self.rank())));
    EXPECT_FALSE(s.insert("rank-" + std::to_string(self.rank())));
  });
  ctx.run([&](Actor& self) {
    const int other = (self.rank() + 1) % 4;
    EXPECT_TRUE(s.find("rank-" + std::to_string(other)));
    EXPECT_FALSE(s.find("missing"));
  });
  EXPECT_EQ(s.size(), 4u);
  ctx.run_one(0, [&](Actor&) {
    EXPECT_TRUE(s.erase("rank-0"));
    EXPECT_FALSE(s.contains("rank-0"));
  });
}

TEST(UnorderedSet, ForEachVisitsAllKeys) {
  Context ctx(zero_config(2, 1));
  unordered_set<int> s(ctx);
  ctx.run_one(0, [&](Actor&) {
    for (int i = 0; i < 50; ++i) s.insert(i);
  });
  std::set<int> seen;
  s.for_each([&](const int& k) { seen.insert(k); });
  EXPECT_EQ(seen.size(), 50u);
}

TEST(OrderedSet, OrderedTraversal) {
  Context ctx(zero_config(4, 1));
  set<int> s(ctx);
  ctx.run([&](Actor& self) {
    for (int i = 0; i < 32; ++i) s.insert(self.rank() * 1000 + i);
  });
  int prev = -1;
  std::size_t n = 0;
  s.for_each_ordered([&](const int& k) {
    EXPECT_GT(k, prev);
    prev = k;
    ++n;
  });
  EXPECT_EQ(n, 4u * 32u);
}

TEST(OrderedSet, AsyncInsert) {
  Context ctx(zero_config(2, 1));
  set<int> s(ctx);
  ctx.run_one(0, [&](Actor& self) {
    auto f = s.async_insert(42);
    EXPECT_TRUE(f.get(self));
    EXPECT_TRUE(s.contains(42));
  });
}

// Bulk ops on the ordered map must agree with the scalar ops they coalesce:
// duplicate inserts reject, find_batch distinguishes hits from misses, and
// erase_batch reports per-key presence — mirroring the unordered_map
// batch contract.
TEST(OrderedMap, BatchOpsMatchScalarSemantics) {
  Context ctx(zero_config(4, 1));
  core::ContainerOptions options;
  options.batch.max_ops = 8;
  options.batch.max_delay_ns = 0;
  map<int, std::string> m(ctx, options);

  constexpr int kPerRank = 24;
  ctx.run([&](Actor& self) {
    std::vector<int> keys;
    std::vector<std::string> values;
    for (int i = 0; i < kPerRank; ++i) {
      keys.push_back(self.rank() * 1000 + i);
      values.push_back("v" + std::to_string(self.rank() * 1000 + i));
    }
    const auto ok = m.insert_batch(keys, values);
    for (const bool b : ok) EXPECT_TRUE(b);
    // Re-inserting the same keys must reject every one.
    const auto dup = m.insert_batch(keys, values);
    for (const bool b : dup) EXPECT_FALSE(b);
  });
  EXPECT_EQ(m.size(), static_cast<std::size_t>(4 * kPerRank));

  ctx.run([&](Actor& self) {
    const int other = (self.rank() + 1) % 4;
    std::vector<int> keys;
    for (int i = 0; i < kPerRank; ++i) keys.push_back(other * 1000 + i);
    keys.push_back(other * 1000 + 999);  // miss
    const auto found = m.find_batch(keys);
    ASSERT_EQ(found.size(), keys.size());
    for (int i = 0; i < kPerRank; ++i) {
      ASSERT_TRUE(found[static_cast<std::size_t>(i)].has_value());
      EXPECT_EQ(*found[static_cast<std::size_t>(i)],
                "v" + std::to_string(keys[static_cast<std::size_t>(i)]));
    }
    EXPECT_FALSE(found.back().has_value());
  });

  ctx.run_one(0, [&](Actor&) {
    std::vector<int> evens;
    for (int r = 0; r < 4; ++r) {
      for (int i = 0; i < kPerRank; i += 2) evens.push_back(r * 1000 + i);
    }
    const auto ok = m.erase_batch(evens);
    for (const bool b : ok) EXPECT_TRUE(b);
    const auto again = m.erase_batch(evens);
    for (const bool b : again) EXPECT_FALSE(b);
  });
  EXPECT_EQ(m.size(), static_cast<std::size_t>(4 * kPerRank / 2));

  // Global iteration order survives batched mutation.
  int prev = -1;
  m.for_each_ordered([&](const int& k, const std::string&) {
    EXPECT_GT(k, prev);
    prev = k;
  });
}

// A dropped constituent of a coalesced bundle must surface as a failed
// Status for exactly that op; the rest of the bundle lands. Repairing the
// failed key converges the map to the fault-free state.
TEST(OrderedMap, BatchStatusesCaptureInjectedFaults) {
  Context ctx(zero_config(2, 1));
  core::ContainerOptions options;
  options.batch.max_ops = 8;
  options.batch.max_delay_ns = 0;
  map<int, std::string> m(ctx, options);

  auto plan = std::make_shared<fabric::FaultPlan>(17);
  plan->trigger_at(1, fabric::OpClass::kBatchOp, 2, fabric::FaultKind::kDrop);
  ctx.set_fault_plan(plan);

  constexpr int kKeys = 48;
  std::vector<int> failed;
  ctx.run_one(0, [&](Actor&) {
    std::vector<int> keys;
    std::vector<std::string> values;
    for (int i = 0; i < kKeys; ++i) {
      keys.push_back(i);
      values.push_back("v" + std::to_string(i));
    }
    std::vector<Status> statuses;
    const auto ok = m.insert_batch(keys, values, &statuses);
    ASSERT_EQ(statuses.size(), keys.size());
    for (int i = 0; i < kKeys; ++i) {
      if (!statuses[static_cast<std::size_t>(i)].ok()) {
        failed.push_back(i);
      } else {
        EXPECT_TRUE(ok[static_cast<std::size_t>(i)]);
      }
    }
  });
  ASSERT_EQ(failed.size(), 1u);  // exactly the triggered constituent

  ctx.set_fault_plan(nullptr);
  ctx.run_one(0, [&](Actor&) {
    for (const int k : failed) m.insert(k, "v" + std::to_string(k));
  });
  EXPECT_EQ(m.size(), static_cast<std::size_t>(kKeys));
  ctx.run_one(0, [&](Actor&) {
    for (int i = 0; i < kKeys; ++i) {
      std::string v;
      ASSERT_TRUE(m.find(i, &v));
      EXPECT_EQ(v, "v" + std::to_string(i));
    }
  });
}

TEST(UnorderedSet, BatchRoundTrip) {
  Context ctx(zero_config(2, 2));
  core::ContainerOptions options;
  options.batch.max_ops = 8;
  options.batch.max_delay_ns = 0;
  unordered_set<int> s(ctx, options);

  ctx.run([&](Actor& self) {
    std::vector<int> keys;
    for (int i = 0; i < 16; ++i) keys.push_back(self.rank() * 100 + i);
    const auto ok = s.insert_batch(keys);
    for (const bool b : ok) EXPECT_TRUE(b);
    const auto dup = s.insert_batch(keys);
    for (const bool b : dup) EXPECT_FALSE(b);
  });
  EXPECT_EQ(s.size(), 4u * 16u);

  ctx.run([&](Actor& self) {
    const int other = (self.rank() + 1) % 4;
    std::vector<int> keys;
    for (int i = 0; i < 16; ++i) keys.push_back(other * 100 + i);
    keys.push_back(other * 100 + 99);  // absent
    const auto present = s.find_batch(keys);
    for (std::size_t i = 0; i + 1 < present.size(); ++i) {
      EXPECT_TRUE(present[i]);
    }
    EXPECT_FALSE(present.back());
  });

  ctx.run_one(0, [&](Actor&) {
    std::vector<int> keys;
    for (int r = 0; r < 4; ++r) {
      for (int i = 0; i < 16; ++i) keys.push_back(r * 100 + i);
    }
    const auto ok = s.erase_batch(keys);
    for (const bool b : ok) EXPECT_TRUE(b);
    const auto gone = s.find_batch(keys);
    for (const bool b : gone) EXPECT_FALSE(b);
  });
  EXPECT_EQ(s.size(), 0u);
}

TEST(OrderedSet, BatchRoundTrip) {
  Context ctx(zero_config(2, 1));
  core::ContainerOptions options;
  options.batch.max_ops = 4;
  options.batch.max_delay_ns = 0;
  set<int> s(ctx, options);

  ctx.run_one(0, [&](Actor&) {
    std::vector<int> keys;
    for (int i = 31; i >= 0; --i) keys.push_back(i);  // reverse order
    const auto ok = s.insert_batch(keys);
    for (const bool b : ok) EXPECT_TRUE(b);
    const auto present = s.find_batch(keys);
    for (const bool b : present) EXPECT_TRUE(b);
  });

  // Traversal is ordered regardless of batched-insert order.
  int prev = -1;
  std::size_t n = 0;
  s.for_each_ordered([&](const int& k) {
    EXPECT_GT(k, prev);
    prev = k;
    ++n;
  });
  EXPECT_EQ(n, 32u);

  ctx.run_one(0, [&](Actor&) {
    std::vector<int> evens;
    for (int i = 0; i < 32; i += 2) evens.push_back(i);
    const auto ok = s.erase_batch(evens);
    for (const bool b : ok) EXPECT_TRUE(b);
  });
  EXPECT_EQ(s.size(), 16u);
}

}  // namespace
}  // namespace hcl
