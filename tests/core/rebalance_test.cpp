// Heat-driven shard rebalancing (DESIGN.md §5g): split/merge/migrate move
// slots and keys under the container latch with zero failed ops, routes
// follow the shard map, the heat advisor acts only on skew, and the whole
// feature is fenced behind rebalance.enabled. Also covers the route-aware
// introspection fixes (size/for_each across a kill -> promote -> rejoin
// cycle) and the degenerate-replica-placement construction check.
#include "core/ordered_map.h"
#include "core/priority_queue.h"
#include "core/queue.h"
#include "core/sets.h"
#include "core/unordered_map.h"

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "fabric/fault_plan.h"

namespace hcl {
namespace {

using fabric::FaultPlan;
using sim::Actor;
using sim::CostModel;

Context::Config zero_config(int nodes, int procs,
                            std::shared_ptr<FaultPlan> plan = nullptr) {
  Context::Config cfg;
  cfg.num_nodes = nodes;
  cfg.procs_per_node = procs;
  cfg.model = CostModel::zero();
  cfg.fault_plan = std::move(plan);
  return cfg;
}

core::RebalancePolicy enabled_policy(std::int64_t min_ops = 1,
                                     std::int64_t cooldown = 1) {
  core::RebalancePolicy rb;
  rb.enabled = true;
  rb.min_ops = min_ops;
  rb.cooldown_ops = cooldown;
  return rb;
}

/// First key >= lo whose partition is `p`.
template <typename Map>
int key_in_partition(const Map& m, int p, int lo = 0) {
  for (int k = lo;; ++k) {
    if (m.partition_of(k) == p) return k;
  }
}

// ---------------------------------------------------------------------------
// split / merge: slot ownership moves, keys follow, routes stay correct.
// ---------------------------------------------------------------------------

TEST(Rebalance, SplitMovesSlotsAndKeysFollowRoutes) {
  Context ctx(zero_config(3, 1));
  core::ContainerOptions opts;
  opts.num_partitions = 3;
  opts.rebalance = enabled_policy();
  unordered_map<int, int> m(ctx, opts);

  std::vector<int> keys;
  for (int k = 0; static_cast<int>(keys.size()) < 32; ++k) {
    if (m.partition_of(k) == 0) keys.push_back(k);
  }
  ctx.run_one(0, [&](Actor&) {
    for (int k : keys) ASSERT_TRUE(m.insert(k, k * 10));
    // Concentrate heat on partition 0 so split() peels its hot slots.
    for (int round = 0; round < 8; ++round) {
      for (int k : keys) {
        int v = 0;
        ASSERT_TRUE(m.find(k, &v));
      }
    }
    const std::size_t moved = m.split(0);
    EXPECT_GT(moved, 0u);
    EXPECT_EQ(m.rebalances(), 1u);
    // Every key is still reachable through the post-split routes, and at
    // least one of partition 0's keys now routes elsewhere.
    bool rerouted = false;
    for (int k : keys) {
      int v = 0;
      EXPECT_TRUE(m.find(k, &v));
      EXPECT_EQ(v, k * 10);
      rerouted = rerouted || m.partition_of(k) != 0;
    }
    EXPECT_TRUE(rerouted);
  });
  EXPECT_EQ(m.size(), keys.size());
  // The move shows up on the destination NIC's migration counters.
  std::int64_t migrations = 0;
  for (int n = 0; n < 3; ++n) {
    migrations += ctx.fabric().nic(n).counters().migrations.load();
  }
  EXPECT_EQ(migrations, 1);
}

TEST(Rebalance, MergeDrainsSourcePartition) {
  Context ctx(zero_config(2, 1));
  core::ContainerOptions opts;
  opts.num_partitions = 2;
  opts.rebalance = enabled_policy();
  unordered_map<int, int> m(ctx, opts);

  std::vector<int> keys;
  for (int k = 0; static_cast<int>(keys.size()) < 16; ++k) {
    if (m.partition_of(k) == 0) keys.push_back(k);
  }
  ctx.run_one(0, [&](Actor&) {
    for (int k : keys) ASSERT_TRUE(m.insert(k, k));
    const std::size_t moved = m.merge(0, 1);
    EXPECT_EQ(moved, keys.size());
    for (int k : keys) {
      EXPECT_EQ(m.partition_of(k), 1);  // every slot now owned by 1
      int v = 0;
      EXPECT_TRUE(m.find(k, &v));
      EXPECT_EQ(v, k);
    }
  });
  EXPECT_EQ(m.size(), keys.size());
  for (int slot = 0; slot < m.num_slots(); ++slot) {
    EXPECT_EQ(m.slot_owner(slot), 1);
  }
}

TEST(Rebalance, OrderedMapSplitPreservesGlobalOrder) {
  Context ctx(zero_config(3, 1));
  core::ContainerOptions opts;
  opts.num_partitions = 3;
  opts.rebalance = enabled_policy();
  map<int, int> m(ctx, opts);

  std::vector<int> keys;
  for (int k = 0; static_cast<int>(keys.size()) < 24; ++k) {
    if (m.partition_of(k) == 0) keys.push_back(k);
  }
  ctx.run_one(0, [&](Actor&) {
    for (int k : keys) ASSERT_TRUE(m.insert(k, k + 1));
    for (int round = 0; round < 8; ++round) {
      for (int k : keys) {
        int v = 0;
        ASSERT_TRUE(m.find(k, &v));
      }
    }
    EXPECT_GT(m.split(0), 0u);
    for (int k : keys) {
      int v = 0;
      EXPECT_TRUE(m.find(k, &v));
      EXPECT_EQ(v, k + 1);
    }
  });
  // Ordered visit still yields every key exactly once, in order.
  std::vector<int> visited;
  m.for_each_ordered([&](const int& k, const int&) { visited.push_back(k); });
  EXPECT_EQ(visited.size(), keys.size());
  EXPECT_TRUE(std::is_sorted(visited.begin(), visited.end()));
}

TEST(Rebalance, SetForwardersMoveSlots) {
  Context ctx(zero_config(2, 1));
  core::ContainerOptions opts;
  opts.num_partitions = 2;
  opts.rebalance = enabled_policy();
  unordered_set<int> s(ctx, opts);

  std::vector<int> keys;
  for (int k = 0; static_cast<int>(keys.size()) < 8; ++k) {
    if (s.partition_of(k) == 0) keys.push_back(k);
  }
  ctx.run_one(0, [&](Actor&) {
    for (int k : keys) ASSERT_TRUE(s.insert(k));
    EXPECT_EQ(s.merge(0, 1), keys.size());
    for (int k : keys) EXPECT_TRUE(s.find(k));
  });
  EXPECT_EQ(s.rebalances(), 1u);
  EXPECT_EQ(s.size(), keys.size());
}

// ---------------------------------------------------------------------------
// migrate: partition re-homes, replication chain and queue mirror follow.
// ---------------------------------------------------------------------------

TEST(Rebalance, MigrateRehomesPartition) {
  Context ctx(zero_config(3, 1));
  core::ContainerOptions opts;
  opts.num_partitions = 3;
  opts.rebalance = enabled_policy();
  unordered_map<int, int> m(ctx, opts);
  const int k0 = key_in_partition(m, 0);

  ctx.run_one(0, [&](Actor&) {
    ASSERT_TRUE(m.insert(k0, 5));
    EXPECT_FALSE(m.migrate(0, m.partition_owner(0)));  // already there
    EXPECT_TRUE(m.migrate(0, 2));
    EXPECT_EQ(m.partition_owner(0), 2);
    int v = 0;
    EXPECT_TRUE(m.find(k0, &v));  // now a remote RPC to node 2
    EXPECT_EQ(v, 5);
    EXPECT_FALSE(m.upsert(k0, 6));  // write path follows too (overwrite)
    EXPECT_TRUE(m.find(k0, &v));
    EXPECT_EQ(v, 6);
  });
  EXPECT_GT(ctx.fabric().nic(2).counters().migrations.load(), 0);
  EXPECT_GT(ctx.fabric().nic(2).counters().migrated_bytes.load(), 0);
}

TEST(Rebalance, QueueMigrateMovesHostAndStandby) {
  Context ctx(zero_config(3, 1));
  core::ContainerOptions opts;
  opts.rebalance = enabled_policy();
  queue<int> q(ctx, opts);
  ASSERT_EQ(q.host_node(), 0);

  ctx.run_one(0, [&](Actor&) {
    for (int i = 0; i < 4; ++i) ASSERT_TRUE(q.push(i));
    EXPECT_TRUE(q.migrate(1));
    EXPECT_EQ(q.host_node(), 1);
    EXPECT_EQ(q.standby_node(), 2);
    int v = -1;
    EXPECT_TRUE(q.pop(&v));
    EXPECT_EQ(v, 0);  // FIFO order survives the move
  });
  EXPECT_EQ(q.size(), 3u);
  EXPECT_GT(ctx.fabric().nic(1).counters().migrations.load(), 0);
}

TEST(Rebalance, PriorityQueueMigrateMovesHost) {
  Context ctx(zero_config(2, 1));
  core::ContainerOptions opts;
  opts.rebalance = enabled_policy();
  priority_queue<int> pq(ctx, opts);

  ctx.run_one(0, [&](Actor&) {
    ASSERT_TRUE(pq.push(9));
    ASSERT_TRUE(pq.push(3));
    EXPECT_TRUE(pq.migrate(1));
    EXPECT_EQ(pq.host_node(), 1);
    int v = -1;
    EXPECT_TRUE(pq.pop(&v));
    EXPECT_EQ(v, 3);  // min-order survives the move
  });
}

// ---------------------------------------------------------------------------
// Advisor: rebalance_tick splits only under real skew with enough signal.
// ---------------------------------------------------------------------------

TEST(Rebalance, TickSplitsHotPartitionUnderSkew) {
  Context ctx(zero_config(3, 1));
  core::ContainerOptions opts;
  opts.num_partitions = 3;
  opts.rebalance = enabled_policy(/*min_ops=*/64, /*cooldown=*/128);
  unordered_map<int, int> m(ctx, opts);

  std::vector<int> hot;
  for (int k = 0; static_cast<int>(hot.size()) < 8; ++k) {
    if (m.partition_of(k) == 1) hot.push_back(k);
  }
  ctx.run_one(0, [&](Actor&) {
    for (int k : hot) ASSERT_TRUE(m.insert(k, k));
    for (int round = 0; round < 32; ++round) {
      for (int k : hot) {
        int v = 0;
        ASSERT_TRUE(m.find(k, &v));
      }
    }
    EXPECT_EQ(m.rebalance_tick(), 1);  // the hot partition was split
    EXPECT_EQ(m.rebalances(), 1u);
    // Heat was reset by the move; an immediate second tick has no signal.
    EXPECT_EQ(m.rebalance_tick(), -1);
  });
}

TEST(Rebalance, TickDoesNothingOnUniformLoad) {
  Context ctx(zero_config(3, 1));
  core::ContainerOptions opts;
  opts.num_partitions = 3;
  opts.rebalance = enabled_policy(/*min_ops=*/32, /*cooldown=*/32);
  unordered_map<int, int> m(ctx, opts);

  ctx.run_one(0, [&](Actor&) {
    for (int k = 0; k < 128; ++k) ASSERT_TRUE(m.insert(k, k));
    EXPECT_EQ(m.rebalance_tick(), -1);
    EXPECT_EQ(m.rebalances(), 0u);
  });
}

// ---------------------------------------------------------------------------
// Gating: everything behind rebalance.enabled; bad arguments rejected.
// ---------------------------------------------------------------------------

TEST(Rebalance, DisabledByDefaultAndGated) {
  Context ctx(zero_config(2, 1));
  core::ContainerOptions opts;
  opts.num_partitions = 2;
  opts.rebalance.enabled = false;
  unordered_map<int, int> m(ctx, opts);

  ctx.run_one(0, [&](Actor&) {
    try {
      m.split(0);
      FAIL() << "split must throw when rebalancing is disabled";
    } catch (const HclError& e) {
      EXPECT_EQ(e.code(), StatusCode::kFailedPrecondition);
    }
    try {
      m.merge(0, 1);
      FAIL() << "merge must throw when rebalancing is disabled";
    } catch (const HclError& e) {
      EXPECT_EQ(e.code(), StatusCode::kFailedPrecondition);
    }
    try {
      m.migrate(0, 1);
      FAIL() << "migrate must throw when rebalancing is disabled";
    } catch (const HclError& e) {
      EXPECT_EQ(e.code(), StatusCode::kFailedPrecondition);
    }
    EXPECT_EQ(m.rebalance_tick(), -1);  // advisor no-ops instead of throwing
  });
}

TEST(Rebalance, RejectsBadArgumentsAndDownNodes) {
  auto plan = std::make_shared<FaultPlan>(7);
  Context ctx(zero_config(3, 1, plan));
  core::ContainerOptions opts;
  opts.num_partitions = 3;
  opts.rebalance = enabled_policy();
  unordered_map<int, int> m(ctx, opts);

  ctx.run_one(0, [&](Actor&) {
    try {
      m.merge(1, 1);
      FAIL() << "merge(p, p) must be rejected";
    } catch (const HclError& e) {
      EXPECT_EQ(e.code(), StatusCode::kInvalidArgument);
    }
    try {
      m.migrate(0, 99);
      FAIL() << "migrate to a bad node must be rejected";
    } catch (const HclError& e) {
      EXPECT_EQ(e.code(), StatusCode::kInvalidArgument);
    }
    try {
      m.split(-1);
      FAIL() << "split of a bad partition must be rejected";
    } catch (const HclError& e) {
      EXPECT_EQ(e.code(), StatusCode::kInvalidArgument);
    }
  });

  plan->fail_node(2);
  ctx.run_one(0, [&](Actor&) {
    try {
      m.migrate(0, 2);
      FAIL() << "migrate onto a dead node must be rejected";
    } catch (const HclError& e) {
      EXPECT_EQ(e.code(), StatusCode::kUnavailable);
    }
    try {
      m.merge(2, 0);  // partition 2 lives on the dead node
      FAIL() << "moving a partition hosted on a dead node must be rejected";
    } catch (const HclError& e) {
      EXPECT_EQ(e.code(), StatusCode::kFailedPrecondition);
    }
  });
  plan->rejoin_node(2);
}

TEST(Rebalance, RefusesMoveWhilePromotedUntilHeal) {
  auto plan = std::make_shared<FaultPlan>(11);
  Context ctx(zero_config(3, 1, plan));
  core::ContainerOptions opts;
  opts.num_partitions = 3;
  opts.replication = 1;
  opts.rebalance = enabled_policy();
  unordered_map<int, int> m(ctx, opts);
  const int k1 = key_in_partition(m, 1);

  plan->fail_node(1);
  ctx.run_one(0, [&](Actor&) {
    ASSERT_TRUE(m.insert(k1, 1));  // promotes partition 1's standby
  });
  ASSERT_TRUE(m.partition_promoted(1));

  plan->rejoin_node(1);
  ctx.run_one(0, [&](Actor& self) {
    try {
      m.split(1);
      FAIL() << "split of a promoted partition must be rejected";
    } catch (const HclError& e) {
      EXPECT_EQ(e.code(), StatusCode::kFailedPrecondition);
    }
    m.heal(self);
    // Healed: moves are allowed again (merge drains partition 1 into 0).
    EXPECT_EQ(m.merge(1, 0), 1u);
    int v = 0;
    EXPECT_TRUE(m.find(k1, &v));
    EXPECT_EQ(v, 1);
  });
}

// ---------------------------------------------------------------------------
// Route-aware introspection (bugfix): size()/visit must overlay the
// promoted journal across a kill -> promote -> rejoin cycle.
// ---------------------------------------------------------------------------

TEST(Rebalance, SizeIsRouteAwareAcrossFailoverCycle) {
  auto plan = std::make_shared<FaultPlan>(3);
  Context ctx(zero_config(3, 1, plan));
  unordered_map<int, int> m(ctx, {.num_partitions = 3, .replication = 1});
  const int ka = key_in_partition(m, 1);
  const int kb = key_in_partition(m, 1, ka + 1);
  const int kc = key_in_partition(m, 1, kb + 1);

  ctx.run_one(0, [&](Actor&) {
    ASSERT_TRUE(m.insert(ka, 100));
    ASSERT_TRUE(m.insert(kc, 300));
  });
  EXPECT_EQ(m.size(), 2u);

  plan->fail_node(1);
  ctx.run_one(0, [&](Actor&) {
    ASSERT_FALSE(m.upsert(ka, 200));  // overwrite via the standby
    ASSERT_TRUE(m.insert(kb, 400));   // fresh insert while down
    ASSERT_TRUE(m.erase(kc));         // erase while down
  });
  ASSERT_TRUE(m.partition_promoted(1));
  // The dead primary's base map still holds {ka, kc}; the journal holds
  // upsert(ka), insert(kb), erase(kc). Authoritative count: {ka, kb} = 2.
  EXPECT_EQ(m.size(), 2u);
  // The visitor agrees with the journal overlay, not the stale base.
  std::map<int, int> seen;
  m.for_each([&](const int& k, const int& v) { seen[k] = v; });
  EXPECT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen.at(ka), 200);
  EXPECT_EQ(seen.at(kb), 400);
  EXPECT_EQ(seen.count(kc), 0u);

  plan->rejoin_node(1);
  ctx.run_one(0, [&](Actor& self) { m.heal(self); });
  EXPECT_EQ(m.size(), 2u);
  seen.clear();
  m.for_each([&](const int& k, const int& v) { seen[k] = v; });
  EXPECT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen.at(ka), 200);
}

TEST(Rebalance, OrderedVisitIsRouteAwareWhilePromoted) {
  auto plan = std::make_shared<FaultPlan>(5);
  Context ctx(zero_config(3, 1, plan));
  map<int, int> m(ctx, {.num_partitions = 3, .replication = 1});
  const int ka = key_in_partition(m, 1);
  const int kb = key_in_partition(m, 1, ka + 1);

  ctx.run_one(0, [&](Actor&) { ASSERT_TRUE(m.insert(ka, 1)); });
  plan->fail_node(1);
  ctx.run_one(0, [&](Actor&) {
    ASSERT_TRUE(m.insert(kb, 2));  // lands in the promoted journal
    ASSERT_TRUE(m.erase(ka));
  });
  ASSERT_TRUE(m.partition_promoted(1));
  EXPECT_EQ(m.size(), 1u);
  std::vector<std::pair<int, int>> visited;
  m.for_each_ordered(
      [&](const int& k, const int& v) { visited.emplace_back(k, v); });
  ASSERT_EQ(visited.size(), 1u);
  EXPECT_EQ(visited[0].first, kb);
  EXPECT_EQ(visited[0].second, 2);
  plan->rejoin_node(1);
  ctx.run_one(0, [&](Actor& self) { m.heal(self); });
  EXPECT_EQ(m.size(), 1u);
}

// ---------------------------------------------------------------------------
// Degenerate replica placement (bugfix): co-located replicas are rejected
// at construction instead of silently losing fault tolerance.
// ---------------------------------------------------------------------------

TEST(Rebalance, RejectsCoLocatedReplicasAtConstruction) {
  Context ctx(zero_config(1, 2));
  // Every partition of a 1-node cluster is co-located: replication could
  // never survive the only node's loss.
  try {
    unordered_map<int, int> m(ctx, {.num_partitions = 2, .replication = 1});
    FAIL() << "co-located replicas must be rejected";
  } catch (const HclError& e) {
    EXPECT_EQ(e.code(), StatusCode::kInvalidArgument);
  }
  try {
    map<int, int> m(ctx, {.num_partitions = 2, .replication = 1});
    FAIL() << "co-located ordered replicas must be rejected";
  } catch (const HclError& e) {
    EXPECT_EQ(e.code(), StatusCode::kInvalidArgument);
  }
  try {
    queue<int> q(ctx, {.replication = 1});
    FAIL() << "a co-located queue mirror must be rejected";
  } catch (const HclError& e) {
    EXPECT_EQ(e.code(), StatusCode::kInvalidArgument);
  }
  try {
    priority_queue<int> pq(ctx, {.replication = 1});
    FAIL() << "a co-located priority-queue mirror must be rejected";
  } catch (const HclError& e) {
    EXPECT_EQ(e.code(), StatusCode::kInvalidArgument);
  }
  // Unreplicated containers on one node stay legal.
  unordered_map<int, int> ok(ctx, {.num_partitions = 2});
  EXPECT_EQ(ok.num_partitions(), 2);
}

TEST(Rebalance, AcceptsDistinctNodeReplicas) {
  Context ctx(zero_config(3, 1));
  unordered_map<int, int> m(ctx, {.num_partitions = 3, .replication = 2});
  map<int, int> om(ctx, {.num_partitions = 3, .replication = 1});
  queue<int> q(ctx, {.replication = 1});
  EXPECT_EQ(m.num_partitions(), 3);
  EXPECT_EQ(om.num_partitions(), 3);
  EXPECT_EQ(q.standby_node(), 1);
}

}  // namespace
}  // namespace hcl
