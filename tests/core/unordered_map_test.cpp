#include "core/unordered_map.h"

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

namespace hcl {
namespace {

using sim::Actor;
using sim::CostModel;

Context::Config zero_config(int nodes, int procs) {
  Context::Config cfg;
  cfg.num_nodes = nodes;
  cfg.procs_per_node = procs;
  cfg.model = CostModel::zero();
  return cfg;
}

TEST(UnorderedMap, InsertFindAcrossRanks) {
  Context ctx(zero_config(4, 4));
  unordered_map<int, int> map(ctx);
  ctx.run([&](Actor& self) {
    for (int i = 0; i < 32; ++i) {
      ASSERT_TRUE(map.insert(self.rank() * 1000 + i, self.rank()));
    }
  });
  ctx.run([&](Actor& self) {
    const int neighbour = (self.rank() + 1) % ctx.topology().num_ranks();
    for (int i = 0; i < 32; ++i) {
      int v = -1;
      ASSERT_TRUE(map.find(neighbour * 1000 + i, &v));
      EXPECT_EQ(v, neighbour);
    }
  });
  EXPECT_EQ(map.size(), 16u * 32u);
}

TEST(UnorderedMap, DuplicateInsertRejectedGlobally) {
  Context ctx(zero_config(2, 2));
  unordered_map<int, int> map(ctx);
  std::atomic<int> winners{0};
  ctx.run([&](Actor&) {
    if (map.insert(7, 1)) winners.fetch_add(1);
  });
  EXPECT_EQ(winners.load(), 1);
  EXPECT_EQ(map.size(), 1u);
}

TEST(UnorderedMap, EraseUpsertContains) {
  Context ctx(zero_config(2, 1));
  unordered_map<int, std::string> map(ctx);
  ctx.run_one(0, [&](Actor&) {
    EXPECT_TRUE(map.insert(1, "one"));
    EXPECT_TRUE(map.contains(1));
    EXPECT_FALSE(map.upsert(1, "uno"));  // overwrite, not fresh
    std::string v;
    EXPECT_TRUE(map.find(1, &v));
    EXPECT_EQ(v, "uno");
    EXPECT_TRUE(map.erase(1));
    EXPECT_FALSE(map.erase(1));
    EXPECT_FALSE(map.contains(1));
  });
}

TEST(UnorderedMap, VariableLengthValues) {
  Context ctx(zero_config(2, 2));
  unordered_map<int, std::string> map(ctx);
  ctx.run([&](Actor& self) {
    // Variable-length entries (paper: "entries can be of variable-length").
    map.insert(self.rank(), std::string(static_cast<std::size_t>(self.rank() + 1) * 100, 'x'));
  });
  ctx.run([&](Actor& self) {
    std::string v;
    ASSERT_TRUE(map.find(self.rank(), &v));
    EXPECT_EQ(v.size(), static_cast<std::size_t>(self.rank() + 1) * 100);
  });
}

TEST(UnorderedMap, PartitionsSpreadAcrossNodes) {
  Context ctx(zero_config(4, 1));
  unordered_map<int, int> map(ctx);
  EXPECT_EQ(map.num_partitions(), 4);
  for (int p = 0; p < 4; ++p) EXPECT_EQ(map.partition_owner(p), p);
  // Keys spread over all partitions.
  std::vector<int> hits(4, 0);
  for (int k = 0; k < 1000; ++k) ++hits[static_cast<std::size_t>(map.partition_of(k))];
  for (int h : hits) EXPECT_GT(h, 100);
}

TEST(UnorderedMap, CustomPartitionCountAndFirstNode) {
  Context ctx(zero_config(4, 1));
  core::ContainerOptions options;
  options.num_partitions = 2;
  options.first_node = 3;
  unordered_map<int, int> map(ctx, options);
  EXPECT_EQ(map.num_partitions(), 2);
  EXPECT_EQ(map.partition_owner(0), 3);
  EXPECT_EQ(map.partition_owner(1), 0);  // wraps
}

TEST(UnorderedMap, AsyncInsertAndFind) {
  Context ctx(zero_config(2, 2));
  unordered_map<int, int> map(ctx);
  ctx.run([&](Actor& self) {
    std::vector<rpc::Future<bool>> futures;
    for (int i = 0; i < 16; ++i) {
      futures.push_back(map.async_insert(self.rank() * 100 + i, i));
    }
    for (auto& f : futures) EXPECT_TRUE(f.get(self));
    auto found = map.async_find(self.rank() * 100 + 7).get(self);
    ASSERT_TRUE(found.has_value());
    EXPECT_EQ(*found, 7);
  });
}

TEST(UnorderedMap, HybridLocalAccessIsCheaper) {
  // With the Ares cost model, an op on a co-located partition must cost far
  // less simulated time than one on a remote partition (the §III.C.5 claim).
  Context::Config cfg;
  cfg.num_nodes = 2;
  cfg.procs_per_node = 1;
  Context ctx(cfg);
  unordered_map<int, int> map(ctx);
  // Find a local key and a remote key for rank 0 (node 0).
  int local_key = -1, remote_key = -1;
  for (int k = 0; k < 1000 && (local_key < 0 || remote_key < 0); ++k) {
    if (map.partition_owner(map.partition_of(k)) == 0) {
      if (local_key < 0) local_key = k;
    } else if (remote_key < 0) {
      remote_key = k;
    }
  }
  ASSERT_GE(local_key, 0);
  ASSERT_GE(remote_key, 0);
  sim::Nanos local_cost = 0, remote_cost = 0;
  ctx.run_one(0, [&](Actor& self) {
    const sim::Nanos t0 = self.now();
    map.insert(local_key, 1);
    local_cost = self.now() - t0;
    const sim::Nanos t1 = self.now();
    map.insert(remote_key, 1);
    remote_cost = self.now() - t1;
  });
  EXPECT_LT(local_cost, remote_cost);
  EXPECT_GT(remote_cost, ctx.model().net_base_latency_ns);
}

TEST(UnorderedMap, OpStatsMatchTableOne) {
  // Table I: one remote insert = 1 F + 1 L + 1 W; one remote find = 1 F +
  // 1 L + 1 R. Hybrid/local ops contribute no F.
  Context ctx(zero_config(2, 1));
  unordered_map<int, int> map(ctx);
  int local_key = -1, remote_key = -1;
  for (int k = 0; k < 1000 && (local_key < 0 || remote_key < 0); ++k) {
    if (map.partition_owner(map.partition_of(k)) == 0) {
      if (local_key < 0) local_key = k;
    } else if (remote_key < 0) {
      remote_key = k;
    }
  }
  ctx.reset_measurement();
  ctx.run_one(0, [&](Actor&) {
    map.insert(remote_key, 1);
  });
  auto s = ctx.op_stats().snapshot();
  EXPECT_EQ(s.remote_invocations, 1);
  EXPECT_EQ(s.local_ops, 1);
  EXPECT_EQ(s.local_writes, 1);
  EXPECT_EQ(s.local_reads, 0);

  ctx.reset_measurement();
  ctx.run_one(0, [&](Actor&) {
    int v;
    map.find(remote_key, &v);
  });
  s = ctx.op_stats().snapshot();
  EXPECT_EQ(s.remote_invocations, 1);
  EXPECT_EQ(s.local_reads, 1);
  EXPECT_EQ(s.local_writes, 0);

  ctx.reset_measurement();
  ctx.run_one(0, [&](Actor&) {
    map.insert(local_key, 1);
  });
  s = ctx.op_stats().snapshot();
  EXPECT_EQ(s.remote_invocations, 0);  // hybrid path: no F
  EXPECT_EQ(s.local_writes, 1);
}

TEST(UnorderedMap, RegisteredMutatorRmwInOneInvocation) {
  Context ctx(zero_config(2, 2));
  unordered_map<std::string, long> map(ctx);
  const auto add = map.register_mutator<long>(
      [](long& value, const long& delta) { value += delta; });
  ctx.run([&](Actor&) {
    for (int i = 0; i < 100; ++i) {
      map.apply(std::string("counter"), add, 1L, 0L);
    }
  });
  long total = 0;
  ASSERT_TRUE([&] {
    bool found = false;
    ctx.run_one(0, [&](Actor&) { found = map.find("counter", &total); });
    return found;
  }());
  EXPECT_EQ(total, 4 * 100);
}

TEST(UnorderedMap, ExplicitResizeKeepsContents) {
  Context ctx(zero_config(2, 1));
  unordered_map<int, int> map(ctx);
  ctx.run_one(0, [&](Actor&) {
    for (int i = 0; i < 100; ++i) map.insert(i, i);
    for (int p = 0; p < map.num_partitions(); ++p) {
      EXPECT_TRUE(map.resize(p, 4096));
    }
    for (int i = 0; i < 100; ++i) {
      int v;
      ASSERT_TRUE(map.find(i, &v));
      EXPECT_EQ(v, i);
    }
  });
}

TEST(UnorderedMap, ReplicationCopiesUpdates) {
  Context ctx(zero_config(4, 1));
  core::ContainerOptions options;
  options.replication = 1;
  unordered_map<int, int> map(ctx, options);
  ctx.run([&](Actor& self) {
    for (int i = 0; i < 16; ++i) map.insert(self.rank() * 100 + i, i);
  });
  // run() drains NICs, so asynchronous replication has landed.
  std::size_t replicas = 0;
  for (int p = 0; p < map.num_partitions(); ++p) replicas += map.replica_size(p);
  EXPECT_EQ(replicas, 4u * 16u);
}

TEST(UnorderedMap, PersistenceRecoversAfterRestart) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "hcl_umap_persist").string();
  for (int p = 0; p < 8; ++p) std::filesystem::remove(path + ".p" + std::to_string(p));
  {
    Context ctx(zero_config(2, 1));
    core::ContainerOptions options;
    options.persist_path = path;
    unordered_map<int, std::string> map(ctx, options);
    ctx.run_one(0, [&](Actor&) {
      for (int i = 0; i < 50; ++i) map.insert(i, "v" + std::to_string(i));
      map.erase(13);
      map.upsert(7, "updated");
    });
  }  // container + context destroyed ("crash")
  {
    Context ctx(zero_config(2, 1));
    core::ContainerOptions options;
    options.persist_path = path;
    unordered_map<int, std::string> map(ctx, options);
    EXPECT_EQ(map.size(), 49u);
    ctx.run_one(0, [&](Actor&) {
      std::string v;
      EXPECT_FALSE(map.find(13, &v));
      ASSERT_TRUE(map.find(7, &v));
      EXPECT_EQ(v, "updated");
      ASSERT_TRUE(map.find(42, &v));
      EXPECT_EQ(v, "v42");
    });
  }
  for (int p = 0; p < 8; ++p) std::filesystem::remove(path + ".p" + std::to_string(p));
}

// Coalesced bulk ops journal one per-op record each (not one record per
// bundle), so recovery is independent of how ops were batched on the wire —
// including bundles where an injected fault dropped a constituent: the
// dropped op never executed, so it must be absent after replay.
TEST(UnorderedMap, PersistenceRecoversAfterBatchedInserts) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "hcl_umap_batch_persist").string();
  for (int p = 0; p < 8; ++p) std::filesystem::remove(path + ".p" + std::to_string(p));
  constexpr int kKeys = 60;
  std::vector<int> dropped, erased;
  {
    Context ctx(zero_config(2, 1));
    core::ContainerOptions options;
    options.persist_path = path;
    options.batch.max_ops = 8;
    options.batch.max_delay_ns = 0;
    unordered_map<int, std::string> map(ctx, options);

    // Drop the 3rd constituent of the first bundle delivered to node 1.
    auto plan = std::make_shared<fabric::FaultPlan>(11);
    plan->trigger_at(1, fabric::OpClass::kBatchOp, 2, fabric::FaultKind::kDrop);
    ctx.set_fault_plan(plan);

    ctx.run_one(0, [&](Actor&) {
      std::vector<int> keys;
      std::vector<std::string> values;
      for (int i = 0; i < kKeys; ++i) {
        keys.push_back(i);
        values.push_back("v" + std::to_string(i));
      }
      std::vector<Status> statuses;
      const auto ok = map.insert_batch(keys, values, &statuses);
      for (int i = 0; i < kKeys; ++i) {
        if (!statuses[static_cast<std::size_t>(i)].ok()) {
          dropped.push_back(i);
        } else {
          EXPECT_TRUE(ok[static_cast<std::size_t>(i)]);
        }
      }
    });
    ASSERT_EQ(dropped.size(), 1u);  // exactly the triggered constituent

    ctx.set_fault_plan(nullptr);
    ctx.run_one(0, [&](Actor&) {
      std::vector<int> evens;
      for (int i = 0; i < kKeys; i += 6) evens.push_back(i);
      const auto ok = map.erase_batch(evens);
      for (std::size_t i = 0; i < evens.size(); ++i) {
        if (ok[i]) erased.push_back(evens[i]);
      }
    });
  }  // "crash"
  {
    Context ctx(zero_config(2, 1));
    core::ContainerOptions options;
    options.persist_path = path;
    unordered_map<int, std::string> map(ctx, options);
    std::vector<bool> gone(kKeys, false);
    for (const int k : dropped) gone[static_cast<std::size_t>(k)] = true;
    for (const int k : erased) gone[static_cast<std::size_t>(k)] = true;
    std::size_t expected = 0;
    for (int i = 0; i < kKeys; ++i) {
      if (!gone[static_cast<std::size_t>(i)]) ++expected;
    }
    EXPECT_EQ(map.size(), expected);
    ctx.run_one(0, [&](Actor&) {
      for (int i = 0; i < kKeys; ++i) {
        std::string v;
        if (gone[static_cast<std::size_t>(i)]) {
          EXPECT_FALSE(map.find(i, &v)) << "key " << i;
        } else {
          ASSERT_TRUE(map.find(i, &v)) << "key " << i;
          EXPECT_EQ(v, "v" + std::to_string(i));
        }
      }
    });
  }
  for (int p = 0; p < 8; ++p) std::filesystem::remove(path + ".p" + std::to_string(p));
}

TEST(UnorderedMap, ManyConcurrentRanksStress) {
  Context ctx(zero_config(4, 8));
  unordered_map<std::uint64_t, std::uint64_t> map(ctx);
  constexpr int kPerRank = 500;
  ctx.run([&](Actor& self) {
    for (int i = 0; i < kPerRank; ++i) {
      const std::uint64_t k = static_cast<std::uint64_t>(self.rank()) * kPerRank + i;
      ASSERT_TRUE(map.insert(k, k * 2));
    }
    for (int i = 0; i < kPerRank; i += 7) {
      const std::uint64_t k = static_cast<std::uint64_t>(self.rank()) * kPerRank + i;
      std::uint64_t v = 0;
      ASSERT_TRUE(map.find(k, &v));
      EXPECT_EQ(v, k * 2);
    }
  });
  EXPECT_EQ(map.size(), 32u * kPerRank);
}

}  // namespace
}  // namespace hcl
