#include "core/priority_queue.h"
#include "core/queue.h"

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <memory>
#include <set>
#include <string>
#include <vector>

namespace hcl {
namespace {

using sim::Actor;
using sim::CostModel;

Context::Config zero_config(int nodes, int procs) {
  Context::Config cfg;
  cfg.num_nodes = nodes;
  cfg.procs_per_node = procs;
  cfg.model = CostModel::zero();
  return cfg;
}

TEST(Queue, PushPopAcrossNodes) {
  Context ctx(zero_config(4, 1));
  queue<int> q(ctx);  // hosted on node 0
  EXPECT_EQ(q.host_node(), 0);
  ctx.run([&](Actor& self) { q.push(self.rank()); });
  EXPECT_EQ(q.size(), 4u);
  std::atomic<int> popped{0};
  ctx.run([&](Actor&) {
    int v;
    if (q.pop(&v)) popped.fetch_add(1);
  });
  EXPECT_EQ(popped.load(), 4);
  EXPECT_TRUE(q.empty());
}

TEST(Queue, PopOnEmptyFails) {
  Context ctx(zero_config(2, 1));
  queue<int> q(ctx);
  ctx.run([&](Actor&) {
    int v;
    EXPECT_FALSE(q.pop(&v));  // both local (rank 0) and remote (rank 1)
  });
}

TEST(Queue, MwmrConcurrentProducersConsumers) {
  Context ctx(zero_config(4, 4));
  queue<long> q(ctx);
  constexpr int kPerRank = 200;
  std::atomic<long> sum_pushed{0}, sum_popped{0};
  std::atomic<int> n_popped{0};
  ctx.run([&](Actor& self) {
    if (self.rank() % 2 == 0) {
      for (int i = 0; i < kPerRank; ++i) {
        const long v = self.rank() * kPerRank + i;
        q.push(v);
        sum_pushed.fetch_add(v);
      }
    } else {
      long v;
      for (int i = 0; i < kPerRank * 2; ++i) {
        if (q.pop(&v)) {
          sum_popped.fetch_add(v);
          n_popped.fetch_add(1);
        }
      }
    }
  });
  // Drain what consumers missed.
  ctx.run_one(0, [&](Actor&) {
    long v;
    while (q.pop(&v)) {
      sum_popped.fetch_add(v);
      n_popped.fetch_add(1);
    }
  });
  EXPECT_EQ(sum_pushed.load(), sum_popped.load());
  EXPECT_EQ(n_popped.load(), 8 * kPerRank);
}

TEST(Queue, BulkPushPop) {
  Context ctx(zero_config(2, 1));
  queue<int> q(ctx);
  ctx.run_one(1, [&](Actor&) {  // rank 1 = node 1, remote from host node 0
    EXPECT_TRUE(q.push(std::vector<int>{1, 2, 3, 4, 5}));
    std::vector<int> got;
    EXPECT_EQ(q.pop(&got, 3), 3u);
    EXPECT_EQ(got, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(q.pop(&got, 10), 2u);
    EXPECT_EQ(got.size(), 5u);
  });
}

TEST(Queue, FifoOrderFromSingleProducer) {
  Context ctx(zero_config(2, 1));
  queue<int> q(ctx);
  ctx.run_one(1, [&](Actor&) {
    for (int i = 0; i < 100; ++i) q.push(i);
    int v;
    for (int i = 0; i < 100; ++i) {
      ASSERT_TRUE(q.pop(&v));
      EXPECT_EQ(v, i);
    }
  });
}

TEST(Queue, VariableLengthElements) {
  Context ctx(zero_config(2, 1));
  queue<std::string> q(ctx);
  ctx.run_one(1, [&](Actor&) {
    q.push(std::string(10, 'a'));
    q.push(std::string(10'000, 'b'));
    std::string v;
    ASSERT_TRUE(q.pop(&v));
    EXPECT_EQ(v.size(), 10u);
    ASSERT_TRUE(q.pop(&v));
    EXPECT_EQ(v.size(), 10'000u);
  });
}

TEST(Queue, AsyncPushPop) {
  Context ctx(zero_config(2, 1));
  queue<int> q(ctx);
  ctx.run_one(1, [&](Actor& self) {
    auto f = q.async_push(9);
    EXPECT_TRUE(f.get(self));
    auto g = q.async_pop();
    auto v = g.get(self);
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, 9);
  });
}

TEST(Queue, HostNodePlacementOption) {
  Context ctx(zero_config(4, 1));
  core::ContainerOptions options;
  options.first_node = 2;
  queue<int> q(ctx, options);
  EXPECT_EQ(q.host_node(), 2);
}

TEST(Queue, PersistenceRecoversPendingElements) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "hcl_queue_persist").string();
  std::filesystem::remove(path + ".q0");
  {
    Context ctx(zero_config(1, 1));
    core::ContainerOptions options;
    options.persist_path = path;
    queue<int> q(ctx, options);
    ctx.run_one(0, [&](Actor&) {
      for (int i = 0; i < 10; ++i) q.push(i);
      int v;
      q.pop(&v);
      q.pop(&v);  // 0 and 1 consumed
    });
  }
  {
    Context ctx(zero_config(1, 1));
    core::ContainerOptions options;
    options.persist_path = path;
    queue<int> q(ctx, options);
    EXPECT_EQ(q.size(), 8u);
    ctx.run_one(0, [&](Actor&) {
      int v;
      ASSERT_TRUE(q.pop(&v));
      EXPECT_EQ(v, 2);  // FIFO position preserved across restart
    });
  }
  std::filesystem::remove(path + ".q0");
}

// push_batch journals one kPush record per element (not one per bundle), so
// replay rebuilds the queue independently of how pushes were coalesced — and
// a constituent dropped mid-bundle by the fault plan never executed, so it
// is absent from the recovered FIFO while its siblings keep their order.
TEST(Queue, PersistenceRecoversBatchedPushes) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "hcl_queue_batch_persist").string();
  std::filesystem::remove(path + ".q0");
  constexpr int kTotal = 12;
  std::vector<int> surviving;
  {
    Context ctx(zero_config(2, 1));
    core::ContainerOptions options;
    options.persist_path = path;
    options.first_node = 1;  // rank 0 pushes remotely, through the coalescer
    options.batch.max_ops = 4;
    options.batch.max_delay_ns = 0;
    queue<int> q(ctx, options);

    auto plan = std::make_shared<fabric::FaultPlan>(13);
    plan->trigger_at(1, fabric::OpClass::kBatchOp, 3, fabric::FaultKind::kDrop);
    ctx.set_fault_plan(plan);

    ctx.run_one(0, [&](Actor&) {
      std::vector<int> values;
      for (int i = 0; i < kTotal; ++i) values.push_back(100 + i);
      std::vector<Status> statuses;
      const auto ok = q.push_batch(values, &statuses);
      for (int i = 0; i < kTotal; ++i) {
        if (statuses[static_cast<std::size_t>(i)].ok()) {
          EXPECT_TRUE(ok[static_cast<std::size_t>(i)]);
          surviving.push_back(values[static_cast<std::size_t>(i)]);
        }
      }
    });
    ASSERT_EQ(surviving.size(), kTotal - 1u);  // exactly one dropped

    ctx.set_fault_plan(nullptr);
    ctx.run_one(0, [&](Actor&) {
      int v;
      ASSERT_TRUE(q.pop(&v));
      EXPECT_EQ(v, surviving[0]);
      ASSERT_TRUE(q.pop(&v));
      EXPECT_EQ(v, surviving[1]);
    });
  }  // "crash"
  {
    Context ctx(zero_config(2, 1));
    core::ContainerOptions options;
    options.persist_path = path;
    options.first_node = 1;
    queue<int> q(ctx, options);
    EXPECT_EQ(q.size(), surviving.size() - 2);
    ctx.run_one(0, [&](Actor&) {
      int v;
      for (std::size_t i = 2; i < surviving.size(); ++i) {
        ASSERT_TRUE(q.pop(&v));
        EXPECT_EQ(v, surviving[i]);  // FIFO preserved across restart
      }
      EXPECT_FALSE(q.pop(&v));
    });
  }
  std::filesystem::remove(path + ".q0");
}

TEST(PriorityQueue, GlobalMinOrder) {
  Context ctx(zero_config(4, 1));
  priority_queue<int> pq(ctx);
  ctx.run([&](Actor& self) {
    for (int i = 0; i < 25; ++i) pq.push(self.rank() * 25 + i);
  });
  EXPECT_EQ(pq.size(), 100u);
  ctx.run_one(0, [&](Actor&) {
    int prev = -1, v;
    int n = 0;
    while (pq.pop(&v)) {
      EXPECT_GE(v, prev);
      prev = v;
      ++n;
    }
    EXPECT_EQ(n, 100);
  });
}

TEST(PriorityQueue, CustomComparator) {
  Context ctx(zero_config(2, 1));
  priority_queue<int, std::greater<int>> pq(ctx);
  ctx.run_one(1, [&](Actor&) {
    for (int v : {3, 9, 1}) pq.push(v);
    int out;
    ASSERT_TRUE(pq.pop(&out));
    EXPECT_EQ(out, 9);
  });
}

TEST(PriorityQueue, BulkOps) {
  Context ctx(zero_config(2, 1));
  priority_queue<int> pq(ctx);
  ctx.run_one(1, [&](Actor&) {
    EXPECT_TRUE(pq.push(std::vector<int>{9, 1, 5, 3}));
    std::vector<int> got;
    EXPECT_EQ(pq.pop(&got, 3), 3u);
    EXPECT_EQ(got, (std::vector<int>{1, 3, 5}));
  });
}

TEST(PriorityQueue, PushCostGrowsWithDepth) {
  Context::Config cfg;
  cfg.num_nodes = 1;
  cfg.procs_per_node = 1;
  Context ctx(cfg);
  priority_queue<int> pq(ctx);
  sim::Nanos early = 0, late = 0;
  ctx.run_one(0, [&](Actor& self) {
    const sim::Nanos t0 = self.now();
    pq.push(0);
    early = self.now() - t0;
    for (int i = 0; i < 20'000; ++i) pq.push(i);
    const sim::Nanos t1 = self.now();
    pq.push(7);
    late = self.now() - t1;
  });
  EXPECT_GT(late, early);  // the O(log n) Table I term
}

TEST(PriorityQueue, ConcurrentMixedWorkload) {
  Context ctx(zero_config(2, 4));
  priority_queue<int> pq(ctx);
  std::atomic<long> pushed{0}, popped{0};
  ctx.run([&](Actor& self) {
    int v;
    for (int i = 0; i < 200; ++i) {
      if ((i + self.rank()) % 2 == 0) {
        pq.push(i);
        pushed.fetch_add(1);
      } else if (pq.pop(&v)) {
        popped.fetch_add(1);
      }
    }
  });
  long drained = 0;
  ctx.run_one(0, [&](Actor&) {
    int v;
    while (pq.pop(&v)) ++drained;
  });
  EXPECT_EQ(pushed.load(), popped.load() + drained);
}

// ---------------------------------------------------------------------------
// Hybrid async fast path: co-located async ops must stay in shared memory
// (§III.C.5), exactly like their synchronous siblings. They used to cross
// the RoR pipeline and count as remote invocations.
// ---------------------------------------------------------------------------

TEST(Queue, CoLocatedAsyncOpsStayLocal) {
  Context ctx(zero_config(2, 1));
  queue<int> q(ctx);  // hosted on node 0, same node as rank 0
  ctx.run_one(0, [&](Actor& self) {
    const auto f = ctx.op_stats().remote_invocations.load();
    const auto rpcs = ctx.fabric().nic(0).counters().rpc_count.load();
    const auto writes = ctx.op_stats().local_writes.load();
    auto push = q.async_push(42);
    EXPECT_TRUE(push.get(self));
    auto pop = q.async_pop();
    auto v = pop.get(self);
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, 42);
    EXPECT_EQ(ctx.op_stats().remote_invocations.load(), f);  // no F charged
    EXPECT_EQ(ctx.fabric().nic(0).counters().rpc_count.load(), rpcs);
    EXPECT_GT(ctx.op_stats().local_writes.load(), writes);
  });
  // The remote rank still pays the wire: same ops from node 1 are RPCs.
  ctx.run_one(1, [&](Actor& self) {
    const auto f = ctx.op_stats().remote_invocations.load();
    auto push = q.async_push(7);
    EXPECT_TRUE(push.get(self));
    auto pop = q.async_pop();
    EXPECT_EQ(pop.get(self).value(), 7);
    EXPECT_EQ(ctx.op_stats().remote_invocations.load(), f + 2);
  });
}

TEST(PriorityQueue, CoLocatedAsyncOpsStayLocal) {
  Context ctx(zero_config(2, 1));
  priority_queue<int> pq(ctx);  // hosted on node 0
  ctx.run_one(0, [&](Actor& self) {
    const auto f = ctx.op_stats().remote_invocations.load();
    const auto rpcs = ctx.fabric().nic(0).counters().rpc_count.load();
    EXPECT_TRUE(pq.async_push(30).get(self));
    EXPECT_TRUE(pq.async_push(10).get(self));
    EXPECT_TRUE(pq.async_push(20).get(self));
    auto v = pq.async_pop().get(self);
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, 10);  // min-order preserved through the local path
    EXPECT_EQ(ctx.op_stats().remote_invocations.load(), f);
    EXPECT_EQ(ctx.fabric().nic(0).counters().rpc_count.load(), rpcs);
  });
  ctx.run_one(1, [&](Actor& self) {
    const auto f = ctx.op_stats().remote_invocations.load();
    EXPECT_TRUE(pq.async_push(5).get(self));
    EXPECT_EQ(pq.async_pop().get(self).value(), 5);
    EXPECT_EQ(ctx.op_stats().remote_invocations.load(), f + 2);
  });
}

// ---------------------------------------------------------------------------
// Persistence under interleaved batched pushes and pops: replay converges to
// the survivors in order, even when the fault plan kills a mid-bundle op.
// ---------------------------------------------------------------------------

TEST(Queue, PersistenceRecoversInterleavedBatchedOps) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "hcl_queue_interleave_persist")
          .string();
  std::filesystem::remove(path + ".q0");
  std::vector<int> expect;  // model of the host's surviving FIFO
  {
    Context ctx(zero_config(2, 1));
    core::ContainerOptions options;
    options.persist_path = path;
    options.first_node = 1;  // rank 0 drives everything through the wire
    options.batch.max_ops = 4;
    options.batch.max_delay_ns = 0;
    queue<int> q(ctx, options);

    auto plan = std::make_shared<fabric::FaultPlan>(17);
    plan->trigger_at(1, fabric::OpClass::kBatchOp, 5, fabric::FaultKind::kDrop);
    ctx.set_fault_plan(plan);

    ctx.run_one(0, [&](Actor&) {
      std::vector<Status> statuses;
      const std::vector<int> first{0, 1, 2, 3, 4, 5};  // op #5 is dropped
      const auto ok1 = q.push_batch(first, &statuses);
      for (std::size_t i = 0; i < first.size(); ++i) {
        EXPECT_EQ(ok1[i], statuses[i].ok());
        if (statuses[i].ok()) expect.push_back(first[i]);
      }
      ASSERT_EQ(expect.size(), 5u);

      int v = 0;
      for (int i = 0; i < 2; ++i) {  // scalar pops interleave with bundles
        ASSERT_TRUE(q.pop(&v));
        EXPECT_EQ(v, expect.front());
        expect.erase(expect.begin());
      }

      const std::vector<int> second{6, 7, 8, 9, 10, 11};
      const auto ok2 = q.push_batch(second, &statuses);
      for (std::size_t i = 0; i < second.size(); ++i) {
        ASSERT_TRUE(ok2[i]) << i;
        expect.push_back(second[i]);
      }

      ASSERT_TRUE(q.pop(&v));
      EXPECT_EQ(v, expect.front());
      expect.erase(expect.begin());
    });
  }  // "crash"
  {
    Context ctx(zero_config(2, 1));
    core::ContainerOptions options;
    options.persist_path = path;
    options.first_node = 1;
    queue<int> q(ctx, options);
    EXPECT_EQ(q.size(), expect.size());
    ctx.run_one(0, [&](Actor&) {
      int v = 0;
      for (const int want : expect) {
        ASSERT_TRUE(q.pop(&v));
        EXPECT_EQ(v, want);  // FIFO of the survivors, across the restart
      }
      EXPECT_FALSE(q.pop(&v));
    });
  }
  std::filesystem::remove(path + ".q0");
}

TEST(PriorityQueue, PersistenceRecoversInterleavedBatchedOps) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "hcl_pq_interleave_persist")
          .string();
  std::filesystem::remove(path + ".pq0");
  std::vector<int> expect;  // sorted survivors at crash time
  {
    Context ctx(zero_config(2, 1));
    core::ContainerOptions options;
    options.persist_path = path;
    options.first_node = 1;
    options.batch.max_ops = 4;
    options.batch.max_delay_ns = 0;
    priority_queue<int> pq(ctx, options);

    auto plan = std::make_shared<fabric::FaultPlan>(19);
    plan->trigger_at(1, fabric::OpClass::kBatchOp, 2, fabric::FaultKind::kDrop);
    ctx.set_fault_plan(plan);

    ctx.run_one(0, [&](Actor&) {
      std::multiset<int> model;
      std::vector<Status> statuses;
      const std::vector<int> first{50, 40, 30, 20};  // op #2 (30) is dropped
      const auto ok1 = pq.push_batch(first, &statuses);
      for (std::size_t i = 0; i < first.size(); ++i) {
        EXPECT_EQ(ok1[i], statuses[i].ok());
        if (statuses[i].ok()) model.insert(first[i]);
      }
      ASSERT_EQ(model.size(), 3u);
      ASSERT_FALSE(statuses[2].ok());

      int v = 0;
      ASSERT_TRUE(pq.pop(&v));  // a pop between the bundles removes the min
      EXPECT_EQ(v, *model.begin());
      model.erase(model.begin());

      const std::vector<int> second{10, 60, 25};
      const auto ok2 = pq.push_batch(second, &statuses);
      for (std::size_t i = 0; i < second.size(); ++i) {
        ASSERT_TRUE(ok2[i]) << i;
        model.insert(second[i]);
      }

      ASSERT_TRUE(pq.pop(&v));
      EXPECT_EQ(v, *model.begin());
      model.erase(model.begin());
      expect.assign(model.begin(), model.end());
    });
  }  // "crash"
  {
    Context ctx(zero_config(2, 1));
    core::ContainerOptions options;
    options.persist_path = path;
    options.first_node = 1;
    priority_queue<int> pq(ctx, options);
    EXPECT_EQ(pq.size(), expect.size());
    ctx.run_one(0, [&](Actor&) {
      int v = 0;
      for (const int want : expect) {  // replay converged to the survivors
        ASSERT_TRUE(pq.pop(&v));
        EXPECT_EQ(v, want);  // and pops still drain in min-order
      }
      EXPECT_FALSE(pq.pop(&v));
    });
  }
  std::filesystem::remove(path + ".pq0");
}

}  // namespace
}  // namespace hcl
