#include "common/hash.h"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

namespace hcl {
namespace {

TEST(Mix64, IsBijectiveSample) {
  // mix64 must not collide on a dense integer range (std::hash is identity
  // for ints on libstdc++, which is exactly the pathology mix64 fixes).
  std::set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 10'000; ++i) seen.insert(mix64(i));
  EXPECT_EQ(seen.size(), 10'000u);
}

TEST(Mix64, AvalanchesLowBits) {
  // Dense keys must spread across partitions: bucket 16 ways and check
  // rough uniformity.
  constexpr int kParts = 16;
  std::vector<int> counts(kParts, 0);
  constexpr int kKeys = 16'000;
  for (std::uint64_t i = 0; i < kKeys; ++i) {
    ++counts[index_for(mix64(i), kParts)];
  }
  for (int c : counts) {
    EXPECT_GT(c, kKeys / kParts / 2);
    EXPECT_LT(c, kKeys / kParts * 2);
  }
}

TEST(Mix64Alt, IndependentFromPrimary) {
  // The cuckoo alternate hash must disagree with the primary on bucket
  // choice nearly always.
  int same = 0;
  constexpr int kKeys = 10'000;
  for (std::uint64_t i = 0; i < kKeys; ++i) {
    if (index_for(mix64(i), 1024) == index_for(mix64_alt(i), 1024)) ++same;
  }
  EXPECT_LT(same, kKeys / 100);  // ~1/1024 expected
}

TEST(HashBytes, DiffersOnContent) {
  EXPECT_NE(hash_bytes("abc", 3), hash_bytes("abd", 3));
  EXPECT_NE(hash_bytes("abc", 3), hash_bytes("abc", 2));
  EXPECT_EQ(hash_bytes("abc", 3), hash_bytes("abc", 3));
}

TEST(HashFunctor, UsesStdHashCustomization) {
  Hash<int> h;
  Hash<std::string> hs;
  EXPECT_NE(h(1), h(2));
  EXPECT_NE(hs("a"), hs("b"));
}

TEST(AltHash, DiffersFromPrimary) {
  Hash<int> h;
  AltHash<int> a;
  int same = 0;
  for (int i = 0; i < 1000; ++i) {
    if (h(i) == a(i)) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(NextPow2, Boundaries) {
  EXPECT_EQ(next_pow2(0), 1u);
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(2), 2u);
  EXPECT_EQ(next_pow2(3), 4u);
  EXPECT_EQ(next_pow2(1024), 1024u);
  EXPECT_EQ(next_pow2(1025), 2048u);
}

TEST(IsPow2, Classification) {
  EXPECT_FALSE(is_pow2(0));
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(64));
  EXPECT_FALSE(is_pow2(65));
}

TEST(HashCombine, OrderSensitive) {
  EXPECT_NE(hash_combine(hash_combine(0, 1), 2),
            hash_combine(hash_combine(0, 2), 1));
}

TEST(IndexFor, StaysInRange) {
  for (std::uint64_t h : {0ULL, 1ULL, ~0ULL, 0xdeadbeefULL}) {
    EXPECT_LT(index_for(h, 128), 128u);
  }
}

}  // namespace
}  // namespace hcl
