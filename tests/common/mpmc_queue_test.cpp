#include "common/mpmc_queue.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <numeric>
#include <thread>
#include <vector>

namespace hcl {
namespace {

TEST(MpmcQueue, FifoSingleThread) {
  MpmcQueue<int> q(8);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(q.try_push(i));
  for (int i = 0; i < 5; ++i) {
    auto v = q.try_pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_FALSE(q.try_pop().has_value());
}

TEST(MpmcQueue, RejectsWhenFull) {
  MpmcQueue<int> q(4);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(q.try_push(i));
  EXPECT_FALSE(q.try_push(99));
  EXPECT_EQ(q.try_pop().value(), 0);
  EXPECT_TRUE(q.try_push(99));
}

TEST(MpmcQueue, CapacityRoundsToPow2) {
  MpmcQueue<int> q(5);
  EXPECT_EQ(q.capacity(), 8u);
}

TEST(MpmcQueue, MoveOnlyPayload) {
  MpmcQueue<std::unique_ptr<int>> q(4);
  EXPECT_TRUE(q.try_push(std::make_unique<int>(42)));
  auto v = q.try_pop();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(**v, 42);
}

TEST(MpmcQueue, DrainsNonTrivialOnDestruction) {
  auto counter = std::make_shared<int>(0);
  struct Probe {
    std::shared_ptr<int> c;
    Probe() = default;
    explicit Probe(std::shared_ptr<int> p) : c(std::move(p)) {}
    Probe(Probe&&) = default;
    Probe& operator=(Probe&&) = default;
    ~Probe() {
      if (c) ++*c;  // counts only live (non-moved-from) instances
    }
  };
  {
    MpmcQueue<Probe> q(8);
    q.try_push(Probe{counter});
    q.try_push(Probe{counter});
  }
  EXPECT_EQ(*counter, 2);
}

TEST(MpmcQueue, AllItemsSurviveConcurrency) {
  // N producers push disjoint ranges; M consumers drain; the union must be
  // exactly the pushed set (no loss, no duplication).
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int kPerProducer = 25'000;
  MpmcQueue<int> q(1024);
  std::atomic<long> sum{0};
  std::atomic<int> popped{0};

  std::vector<std::thread> pool;
  for (int p = 0; p < kProducers; ++p) {
    pool.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        q.push(p * kPerProducer + i);
      }
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    pool.emplace_back([&] {
      while (popped.load(std::memory_order_relaxed) <
             kProducers * kPerProducer) {
        auto v = q.try_pop();
        if (v.has_value()) {
          sum.fetch_add(*v, std::memory_order_relaxed);
          popped.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& t : pool) t.join();

  const long n = static_cast<long>(kProducers) * kPerProducer;
  EXPECT_EQ(popped.load(), n);
  EXPECT_EQ(sum.load(), n * (n - 1) / 2);
}

TEST(MpmcQueue, PerProducerOrderPreserved) {
  // Single consumer: items from one producer must arrive in its push order.
  MpmcQueue<std::pair<int, int>> q(256);
  constexpr int kProducers = 3;
  constexpr int kPer = 10'000;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPer; ++i) q.push({p, i});
    });
  }
  std::vector<int> last(kProducers, -1);
  int seen = 0;
  while (seen < kProducers * kPer) {
    auto v = q.try_pop();
    if (!v.has_value()) continue;
    auto [p, i] = *v;
    EXPECT_EQ(i, last[p] + 1);
    last[p] = i;
    ++seen;
  }
  for (auto& t : producers) t.join();
}

}  // namespace
}  // namespace hcl
