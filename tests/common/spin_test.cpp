#include "common/spin.h"

#include <gtest/gtest.h>

#include <mutex>
#include <thread>
#include <vector>

namespace hcl {
namespace {

TEST(SpinLock, MutualExclusionUnderContention) {
  SpinLock lock;
  long counter = 0;
  constexpr int kThreads = 8;
  constexpr int kIters = 20'000;
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        std::lock_guard<SpinLock> guard(lock);
        ++counter;
      }
    });
  }
  for (auto& th : pool) th.join();
  EXPECT_EQ(counter, static_cast<long>(kThreads) * kIters);
}

TEST(SpinLock, TryLockFailsWhenHeld) {
  SpinLock lock;
  lock.lock();
  EXPECT_FALSE(lock.try_lock());
  lock.unlock();
  EXPECT_TRUE(lock.try_lock());
  lock.unlock();
}

TEST(SeqLock, ReaderSeesConsistentPair) {
  // Writer keeps the invariant a == b; readers must never observe a != b
  // after validation succeeds.
  SeqLock seq;
  volatile long a = 0, b = 0;
  std::atomic<bool> stop{false};
  std::atomic<int> violations{0};

  std::thread writer([&] {
    for (long i = 1; i < 200'000; ++i) {
      seq.write_begin();
      a = i;
      b = i;
      seq.write_end();
    }
    stop.store(true);
  });

  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        const std::uint64_t s = seq.read_begin();
        const long ra = a;
        const long rb = b;
        if (seq.read_validate(s) && ra != rb) {
          violations.fetch_add(1);
        }
      }
    });
  }
  writer.join();
  for (auto& th : readers) th.join();
  EXPECT_EQ(violations.load(), 0);
}

TEST(SeqLock, ReadBeginReturnsEvenSequence) {
  SeqLock seq;
  EXPECT_EQ(seq.read_begin() % 2, 0u);
  seq.write_begin();
  seq.write_end();
  EXPECT_EQ(seq.read_begin() % 2, 0u);
}

TEST(Backoff, PausesDoNotHang) {
  Backoff b;
  for (int i = 0; i < 50; ++i) b.pause();
  b.reset();
  b.pause();
  SUCCEED();
}

}  // namespace
}  // namespace hcl
