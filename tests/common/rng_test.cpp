#include "common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <map>
#include <set>

namespace hcl {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, SeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng r(7);
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_LT(r.next_below(10), 10u);
  }
}

TEST(Rng, NextBelowRoughlyUniform) {
  Rng r(11);
  std::array<int, 8> counts{};
  constexpr int kDraws = 80'000;
  for (int i = 0; i < kDraws; ++i) ++counts[r.next_below(8)];
  for (int c : counts) {
    EXPECT_GT(c, kDraws / 8 * 0.9);
    EXPECT_LT(c, kDraws / 8 * 1.1);
  }
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng r(3);
  for (int i = 0; i < 1000; ++i) {
    const double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, FillWritesEveryByte) {
  Rng r(5);
  std::array<unsigned char, 37> buf;
  buf.fill(0);
  r.fill(buf.data(), buf.size());
  int zeros = 0;
  for (unsigned char b : buf) {
    if (b == 0) ++zeros;
  }
  EXPECT_LT(zeros, 5);  // 37 random bytes, ~0.14 zeros expected
}

TEST(Rng, NextStringPrintable) {
  Rng r(9);
  const std::string s = r.next_string(64);
  EXPECT_EQ(s.size(), 64u);
  for (char c : s) EXPECT_TRUE(std::isalnum(static_cast<unsigned char>(c)));
}

TEST(Rng, NoShortCycle) {
  Rng r(13);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 10'000; ++i) seen.insert(r.next());
  EXPECT_EQ(seen.size(), 10'000u);
}

TEST(ZipfGen, RespectsRangeAndIsDeterministic) {
  Rng ra(7), rb(7);
  ZipfGen za(1000, 0.99, ra), zb(1000, 0.99, rb);
  for (int i = 0; i < 5'000; ++i) {
    const auto k = za.next();
    EXPECT_LT(k, 1000u);
    EXPECT_EQ(k, zb.next());
  }
}

TEST(ZipfGen, HotKeysDominate) {
  Rng r(21);
  ZipfGen z(10'000, 0.99, r);
  constexpr int kDraws = 50'000;
  int top10 = 0;
  for (int i = 0; i < kDraws; ++i) {
    if (z.next() < 10) ++top10;
  }
  // theta=0.99 over 10k keys: the 10 hottest ranks carry roughly a third of
  // the mass; uniform would give 0.1%. Assert well above uniform.
  EXPECT_GT(top10, kDraws / 10);
}

TEST(ZipfGen, ScrambleSpreadsHotKeysButKeepsSkew) {
  Rng r(33);
  ZipfGen z(10'000, 0.99, r);
  std::map<std::uint64_t, int> freq;
  for (int i = 0; i < 50'000; ++i) ++freq[z.next_scrambled()];
  // Still heavily skewed: the most frequent scrambled key dominates...
  int max_count = 0;
  for (const auto& [k, c] : freq) max_count = std::max(max_count, c);
  EXPECT_GT(max_count, 1'000);
  // ...but it is no longer key 0 with overwhelming probability (mix64(0)
  // lands elsewhere), i.e. hot keys scatter over the keyspace.
  EXPECT_LT(freq[0], max_count);
}

}  // namespace
}  // namespace hcl
