#include "common/rng.h"

#include <gtest/gtest.h>

#include <array>
#include <set>

namespace hcl {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, SeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng r(7);
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_LT(r.next_below(10), 10u);
  }
}

TEST(Rng, NextBelowRoughlyUniform) {
  Rng r(11);
  std::array<int, 8> counts{};
  constexpr int kDraws = 80'000;
  for (int i = 0; i < kDraws; ++i) ++counts[r.next_below(8)];
  for (int c : counts) {
    EXPECT_GT(c, kDraws / 8 * 0.9);
    EXPECT_LT(c, kDraws / 8 * 1.1);
  }
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng r(3);
  for (int i = 0; i < 1000; ++i) {
    const double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, FillWritesEveryByte) {
  Rng r(5);
  std::array<unsigned char, 37> buf;
  buf.fill(0);
  r.fill(buf.data(), buf.size());
  int zeros = 0;
  for (unsigned char b : buf) {
    if (b == 0) ++zeros;
  }
  EXPECT_LT(zeros, 5);  // 37 random bytes, ~0.14 zeros expected
}

TEST(Rng, NextStringPrintable) {
  Rng r(9);
  const std::string s = r.next_string(64);
  EXPECT_EQ(s.size(), 64u);
  for (char c : s) EXPECT_TRUE(std::isalnum(static_cast<unsigned char>(c)));
}

TEST(Rng, NoShortCycle) {
  Rng r(13);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 10'000; ++i) seen.insert(r.next());
  EXPECT_EQ(seen.size(), 10'000u);
}

}  // namespace
}  // namespace hcl
