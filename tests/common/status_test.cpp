#include "common/status.h"

#include <gtest/gtest.h>

namespace hcl {
namespace {

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.to_string(), "OK");
}

TEST(Status, FactoryCarriesCodeAndMessage) {
  Status s = Status::NotFound("key 42");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "key 42");
  EXPECT_EQ(s.to_string(), "NOT_FOUND: key 42");
}

TEST(Status, EqualityComparesCodeOnly) {
  EXPECT_EQ(Status::Retry("a"), Status::Retry("b"));
  EXPECT_FALSE(Status::Retry() == Status::Capacity());
}

TEST(Status, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kFailedPrecondition); ++c) {
    EXPECT_NE(to_string(static_cast<StatusCode>(c)), "UNKNOWN");
  }
}

TEST(Status, ErrorProtocolFactories) {
  EXPECT_EQ(Status::DeadlineExceeded("late").code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(Status::DeadlineExceeded("late").to_string(),
            "DEADLINE_EXCEEDED: late");
  EXPECT_EQ(Status::FailedPrecondition().code(),
            StatusCode::kFailedPrecondition);
}

TEST(Status, RetryableClassification) {
  // Only outcomes with no observable side effects may be retried blindly.
  EXPECT_TRUE(is_retryable(StatusCode::kUnavailable));
  EXPECT_TRUE(is_retryable(StatusCode::kRetry));
  EXPECT_FALSE(is_retryable(StatusCode::kOk));
  EXPECT_FALSE(is_retryable(StatusCode::kInternal));
  EXPECT_FALSE(is_retryable(StatusCode::kDeadlineExceeded));
  EXPECT_FALSE(is_retryable(StatusCode::kFailedPrecondition));
}

TEST(Result, HoldsValue) {
  Result<int> r = 7;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 7);
  EXPECT_EQ(*r, 7);
  EXPECT_TRUE(r.status().ok());
}

TEST(Result, HoldsError) {
  Result<int> r = Status::OutOfMemory("budget");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kOutOfMemory);
  EXPECT_EQ(r.value_or(-1), -1);
  EXPECT_THROW((void)r.value(), HclError);
}

TEST(Result, RejectsOkStatus) {
  EXPECT_THROW((Result<int>(Status::Ok())), HclError);
}

TEST(Result, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(3);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 3);
}

TEST(ThrowIfError, ThrowsOnFailure) {
  EXPECT_NO_THROW(throw_if_error(Status::Ok()));
  EXPECT_THROW(throw_if_error(Status::Internal("bug")), HclError);
}

TEST(HclError, PreservesCode) {
  try {
    throw HclError(Status::Capacity("full"));
  } catch (const HclError& e) {
    EXPECT_EQ(e.code(), StatusCode::kCapacity);
    EXPECT_STREQ(e.what(), "CAPACITY: full");
  }
}

}  // namespace
}  // namespace hcl
