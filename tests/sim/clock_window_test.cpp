#include "sim/clock_window.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "common/rng.h"

namespace hcl::sim {
namespace {

TEST(ClockWindow, FloorTracksActiveMinimum) {
  ClockWindow w(8);
  EXPECT_EQ(w.exact_floor(), ClockWindow::kNoFloor);
  w.activate(3, 500);
  w.activate(5, 200);
  EXPECT_EQ(w.exact_floor(), 200);
  EXPECT_EQ(w.current_floor(), 200);
  w.deactivate(5);
  EXPECT_EQ(w.exact_floor(), 500);
  EXPECT_EQ(w.current_floor(), 500);
}

TEST(ClockWindow, StripedFloorAgreesAcrossStripeBoundaries) {
  // More ranks than one stripe (kStripeRanks = 64), actives scattered so
  // several stripes hold candidates; the striped lazy min must match the
  // exact scan, including after deactivations empty a whole stripe.
  ClockWindow w(200);
  for (int r = 0; r < 200; r += 7) w.activate(r, 1'000 + 13 * r);
  EXPECT_EQ(w.current_floor(), w.exact_floor());
  EXPECT_EQ(w.current_floor(), 1'000);
  // Empty the first stripe (ranks < 64): the floor must move to the next
  // stripe's minimum even though the first stripe's cache was the winner.
  for (int r = 0; r < 64; r += 7) w.deactivate(r);
  EXPECT_EQ(w.exact_floor(), 1'000 + 13 * 70);
  EXPECT_EQ(w.current_floor(), w.exact_floor());
}

TEST(ClockWindow, CachedFloorResetsWhenAllRanksDeactivate) {
  // Satellite regression: the fast-path cache used to carry the previous
  // run's floor across runs. After clocks reset (run_phases style), a stale
  // HIGH cache let early ranks of the next run pass the fast path while
  // their peers were still at 0.
  ClockWindow w(4);
  w.activate(0, 20 * ClockWindow::kWindow);
  w.activate(1, 30 * ClockWindow::kWindow);
  w.throttle(0, 20 * ClockWindow::kWindow);  // publishes + caches a floor
  w.deactivate(0);
  w.deactivate(1);
  EXPECT_EQ(w.active_count(), 0);
  EXPECT_EQ(w.cached_floor(), ClockWindow::kNoFloor);

  // Next run from t=0: rank 0 sits at 0, rank 1 tries to run 2 windows
  // ahead. With the stale cache this returned immediately; now it must wait
  // until rank 0 advances.
  w.activate(0, 0);
  w.activate(1, 0);
  std::atomic<bool> passed{false};
  std::thread racer([&] {
    w.throttle(1, 2 * ClockWindow::kWindow);
    passed.store(true, std::memory_order_release);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(passed.load(std::memory_order_acquire))
      << "rank 1 passed the window while rank 0 held the floor at 0";
  w.throttle(0, 2 * ClockWindow::kWindow);  // rank 0 catches up, floor rises
  racer.join();
  EXPECT_TRUE(passed.load(std::memory_order_acquire));
  w.deactivate(0);
  w.deactivate(1);
}

TEST(ClockWindow, ActivateHammerNeverRaisesCacheAboveExactFloor) {
  // Satellite regression for the activate lost-min race: the historical
  // store(min(load, now)) pair let two concurrent activations overwrite a
  // lower cached floor with a higher one, poisoning the throttle fast path.
  // Hammer activations (which only LOWER the exact floor) while sampling
  // exact-then-cached: since the exact floor is non-increasing during an
  // activation-only phase, cached > exact-read-earlier implies the bug.
  constexpr int kRanks = 128;
  constexpr int kThreads = 8;
  constexpr int kItersPerThread = 4'000;
  ClockWindow w(kRanks);
  std::atomic<bool> stop{false};
  std::atomic<int> started{0};

  std::vector<std::thread> hammers;
  for (int t = 0; t < kThreads; ++t) {
    hammers.emplace_back([&, t] {
      Rng rng(0x1234 + t);
      started.fetch_add(1);
      for (int i = 0; i < kItersPerThread; ++i) {
        const int rank = t * (kRanks / kThreads) +
                         static_cast<int>(rng.next_below(kRanks / kThreads));
        // Descending-ish clocks so activations keep lowering the floor.
        const Nanos now = static_cast<Nanos>(kItersPerThread - i) * 100;
        w.activate(rank, now);
      }
    });
  }
  std::thread checker([&] {
    while (started.load() < kThreads) std::this_thread::yield();
    while (!stop.load(std::memory_order_acquire)) {
      const Nanos exact = w.exact_floor();
      const Nanos cached = w.cached_floor();
      ASSERT_LE(cached, exact)
          << "fast-path cache above the true floor: window breach";
    }
  });
  for (auto& h : hammers) h.join();
  stop.store(true, std::memory_order_release);
  checker.join();
  // Quiesced: the invariant must hold exactly.
  EXPECT_LE(w.cached_floor(), w.exact_floor());
  EXPECT_EQ(w.current_floor(), w.exact_floor());
}

TEST(ClockWindow, ThrottleEnforcesWindowUnderConcurrency) {
  // Ranks advance in bursts from real threads; after every throttle return,
  // the rank must be within kWindow of the (monotone while all ranks are
  // active) exact floor at that moment.
  constexpr int kRanks = 24;
  constexpr int kSteps = 300;
  const Nanos kStep = ClockWindow::kWindow / 10;
  ClockWindow w(kRanks);
  for (int r = 0; r < kRanks; ++r) w.activate(r, 0);
  std::atomic<int> failures{0};
  std::vector<std::thread> pool;
  for (int r = 0; r < kRanks; ++r) {
    pool.emplace_back([&, r] {
      Nanos now = 0;
      Rng rng(77 + r);
      for (int i = 0; i < kSteps; ++i) {
        now += static_cast<Nanos>(rng.next_below(3) + 1) * kStep;
        w.throttle(r, now);
        // Floors only rise while every rank stays active, so a violated
        // bound here cannot be a sampling artifact.
        if (now > w.exact_floor() + ClockWindow::kWindow) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
      w.deactivate(r);
    });
  }
  for (auto& t : pool) t.join();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace hcl::sim
