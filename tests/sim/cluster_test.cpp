#include "sim/cluster.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <vector>

#include "common/status.h"

namespace hcl::sim {
namespace {

TEST(Cluster, RunVisitsEveryRankOnce) {
  Cluster c(Topology(4, 8));
  std::atomic<int> visits{0};
  std::vector<std::atomic<int>> per_rank(32);
  c.run([&](Actor& a) {
    visits.fetch_add(1);
    per_rank[static_cast<std::size_t>(a.rank())].fetch_add(1);
  });
  EXPECT_EQ(visits.load(), 32);
  for (auto& v : per_rank) EXPECT_EQ(v.load(), 1);
}

TEST(Cluster, ActorMatchesTopology) {
  Cluster c(Topology(2, 4));
  c.run([&](Actor& a) {
    EXPECT_EQ(a.node(), a.rank() / 4);
    EXPECT_EQ(&this_actor(), &a);
  });
}

TEST(Cluster, ThisActorThrowsOutsideScope) {
  EXPECT_THROW(this_actor(), HclError);
}

TEST(Cluster, MultiplexedRunCoversAllRanks) {
  // Force multiplexing with a tiny thread cap; every rank still runs once.
  Cluster c(Topology(8, 16));  // 128 ranks
  std::atomic<int> visits{0};
  c.run([&](Actor&) { visits.fetch_add(1); }, /*max_threads=*/3);
  EXPECT_EQ(visits.load(), 128);
}

TEST(Cluster, RunRanksSubset) {
  Cluster c(Topology(2, 4));
  std::set<Rank> seen;
  std::mutex m;
  c.run_ranks(2, 6, [&](Actor& a) {
    std::lock_guard<std::mutex> g(m);
    seen.insert(a.rank());
  });
  EXPECT_EQ(seen, (std::set<Rank>{2, 3, 4, 5}));
}

TEST(Cluster, ClocksAdvanceIndependently) {
  Cluster c(Topology(1, 4));
  c.run([](Actor& a) { a.advance(100 * (a.rank() + 1)); });
  EXPECT_EQ(c.actor(0).now(), 100);
  EXPECT_EQ(c.actor(3).now(), 400);
  EXPECT_EQ(c.max_time(), 400);
}

TEST(Cluster, AlignClocksActsAsBarrier) {
  Cluster c(Topology(1, 4));
  c.run([](Actor& a) { a.advance(100 * (a.rank() + 1)); });
  c.align_clocks();
  for (Rank r = 0; r < 4; ++r) EXPECT_EQ(c.actor(r).now(), 400);
}

TEST(Cluster, RunPhasesAlignsBetweenPhases) {
  Cluster c(Topology(1, 2));
  std::vector<Nanos> phase2_start(2);
  c.run_phases({
      [](Actor& a) { a.advance(a.rank() == 0 ? 50 : 500); },
      [&](Actor& a) { phase2_start[static_cast<std::size_t>(a.rank())] = a.now(); },
  });
  // Both ranks must enter phase 2 at the barrier time of phase 1.
  EXPECT_EQ(phase2_start[0], 500);
  EXPECT_EQ(phase2_start[1], 500);
}

TEST(Cluster, ResetClocks) {
  Cluster c(Topology(1, 2));
  c.run([](Actor& a) { a.advance(123); });
  c.reset_clocks();
  EXPECT_EQ(c.max_time(), 0);
}

TEST(Cluster, MeanTimeSeconds) {
  Cluster c(Topology(1, 2));
  c.run([](Actor& a) { a.advance(a.rank() == 0 ? kSecond : 3 * kSecond); });
  EXPECT_DOUBLE_EQ(c.mean_time_seconds(), 2.0);
}

TEST(Cluster, DeterministicRngPerRank) {
  Cluster c1(Topology(1, 4), /*seed=*/7);
  Cluster c2(Topology(1, 4), /*seed=*/7);
  std::vector<std::uint64_t> draw1(4), draw2(4);
  c1.run([&](Actor& a) { draw1[static_cast<std::size_t>(a.rank())] = a.rng().next(); });
  c2.run([&](Actor& a) { draw2[static_cast<std::size_t>(a.rank())] = a.rng().next(); });
  EXPECT_EQ(draw1, draw2);
  // Different ranks draw different streams.
  EXPECT_NE(draw1[0], draw1[1]);
}

}  // namespace
}  // namespace hcl::sim
