#include "sim/resource.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace hcl::sim {
namespace {

TEST(Resource, SingleLaneSerializes) {
  Resource r(1);
  // Two operations arriving "at the same time" must be served back-to-back.
  EXPECT_EQ(r.reserve(0, 100), 100);
  EXPECT_EQ(r.reserve(0, 100), 200);
  EXPECT_EQ(r.reserve(0, 100), 300);
}

TEST(Resource, IdleLaneStartsAtArrival) {
  Resource r(1);
  EXPECT_EQ(r.reserve(1'000, 50), 1'050);
  // Arrival after the lane is free again: no queueing.
  EXPECT_EQ(r.reserve(5'000, 50), 5'050);
}

TEST(Resource, MultiLaneParallelism) {
  Resource r(2);
  EXPECT_EQ(r.reserve(0, 100), 100);  // lane 0
  EXPECT_EQ(r.reserve(0, 100), 100);  // lane 1 — parallel
  EXPECT_EQ(r.reserve(0, 100), 200);  // queues behind the earliest lane
}

TEST(Resource, ZeroServiceIsFree) {
  Resource r(1);
  EXPECT_EQ(r.reserve(42, 0), 42);
  EXPECT_EQ(r.busy_total(), 0);
}

TEST(Resource, BusyTotalAccumulates) {
  Resource r(4);
  r.reserve(0, 10);
  r.reserve(0, 20);
  EXPECT_EQ(r.busy_total(), 30);
}

TEST(Resource, UtilizationFraction) {
  Resource r(2);
  r.reserve(0, 100);
  r.reserve(0, 100);
  // 200 ns busy over (100 ns elapsed x 2 lanes) = fully utilized.
  EXPECT_DOUBLE_EQ(r.utilization(100), 1.0);
  EXPECT_DOUBLE_EQ(r.utilization(200), 0.5);
}

TEST(Resource, HorizonTracksLatestLane) {
  Resource r(2);
  r.reserve(0, 100);
  r.reserve(0, 300);
  EXPECT_EQ(r.horizon(), 300);
}

TEST(Resource, ResetClearsState) {
  Resource r(1);
  r.reserve(0, 500);
  r.reset();
  EXPECT_EQ(r.busy_total(), 0);
  EXPECT_EQ(r.reserve(0, 10), 10);
}

TEST(Resource, MakespanUnderConcurrentReservations) {
  // Total service pushed from many threads must equal busy_total, and the
  // horizon must be at least total/lanes (conservation of work).
  Resource r(4);
  constexpr int kThreads = 8;
  constexpr int kOps = 5'000;
  constexpr Nanos kService = 7;
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&r] {
      for (int i = 0; i < kOps; ++i) r.reserve(0, kService);
    });
  }
  for (auto& t : pool) t.join();
  const Nanos total = static_cast<Nanos>(kThreads) * kOps * kService;
  EXPECT_EQ(r.busy_total(), total);
  EXPECT_GE(r.horizon(), total / 4);
}

TEST(Resource, FeedsBusySeries) {
  TimeSeries series(100, 10);
  Resource r(1, &series);
  r.reserve(0, 50);    // bucket 0
  r.reserve(250, 30);  // bucket 2 (starts at 250)
  EXPECT_EQ(series.bucket(0), 50);
  EXPECT_EQ(series.bucket(2), 30);
}

TEST(Resource, SaturationStretchesFinishTimes) {
  // The mechanism behind the queue-scaling plateau (Fig. 6c): with offered
  // load >> capacity, the k-th op finishes around k*service/lanes.
  Resource r(2);
  Nanos finish = 0;
  for (int i = 0; i < 1'000; ++i) finish = r.reserve(0, 10);
  EXPECT_EQ(finish, 1'000 * 10 / 2);
}

}  // namespace
}  // namespace hcl::sim
