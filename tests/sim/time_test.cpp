#include "sim/time.h"

#include <gtest/gtest.h>

namespace hcl::sim {
namespace {

TEST(SimClock, StartsAtZero) {
  SimClock c;
  EXPECT_EQ(c.now(), 0);
}

TEST(SimClock, AdvanceAccumulates) {
  SimClock c;
  c.advance(100);
  c.advance(50);
  EXPECT_EQ(c.now(), 150);
}

TEST(SimClock, NegativeAdvanceIgnored) {
  SimClock c;
  c.advance(100);
  c.advance(-40);
  EXPECT_EQ(c.now(), 100);
}

TEST(SimClock, AdvanceToNeverMovesBack) {
  SimClock c;
  c.advance_to(500);
  EXPECT_EQ(c.now(), 500);
  c.advance_to(200);
  EXPECT_EQ(c.now(), 500);
}

TEST(SimClock, Reset) {
  SimClock c;
  c.advance(123);
  c.reset();
  EXPECT_EQ(c.now(), 0);
  c.reset(77);
  EXPECT_EQ(c.now(), 77);
}

TEST(TimeConversion, RoundTrips) {
  EXPECT_DOUBLE_EQ(to_seconds(kSecond), 1.0);
  EXPECT_DOUBLE_EQ(to_seconds(kMillisecond), 1e-3);
  EXPECT_EQ(from_seconds(2.5), 2'500'000'000LL);
}

}  // namespace
}  // namespace hcl::sim
