#include "sim/topology.h"

#include <gtest/gtest.h>

#include "common/status.h"

namespace hcl::sim {
namespace {

TEST(Topology, AresShape) {
  // The paper's testbed: 64 nodes x 40 ranks.
  Topology t(64, 40);
  EXPECT_EQ(t.num_ranks(), 2560);
  EXPECT_EQ(t.node_of(0), 0);
  EXPECT_EQ(t.node_of(39), 0);
  EXPECT_EQ(t.node_of(40), 1);
  EXPECT_EQ(t.node_of(2559), 63);
}

TEST(Topology, LocalIndex) {
  Topology t(4, 10);
  EXPECT_EQ(t.local_index(0), 0);
  EXPECT_EQ(t.local_index(9), 9);
  EXPECT_EQ(t.local_index(10), 0);
  EXPECT_EQ(t.local_index(25), 5);
}

TEST(Topology, FirstRankOn) {
  Topology t(4, 10);
  EXPECT_EQ(t.first_rank_on(0), 0);
  EXPECT_EQ(t.first_rank_on(3), 30);
}

TEST(Topology, CoLocation) {
  Topology t(2, 3);
  EXPECT_TRUE(t.co_located(0, 2));
  EXPECT_FALSE(t.co_located(2, 3));
  EXPECT_TRUE(t.co_located(4, 5));
}

TEST(Topology, Validation) {
  Topology t(2, 3);
  EXPECT_TRUE(t.valid_rank(0));
  EXPECT_TRUE(t.valid_rank(5));
  EXPECT_FALSE(t.valid_rank(6));
  EXPECT_FALSE(t.valid_rank(-1));
  EXPECT_TRUE(t.valid_node(1));
  EXPECT_FALSE(t.valid_node(2));
}

TEST(Topology, RejectsNonPositiveDims) {
  EXPECT_THROW(Topology(0, 4), HclError);
  EXPECT_THROW(Topology(4, 0), HclError);
  EXPECT_THROW(Topology(-1, 4), HclError);
}

}  // namespace
}  // namespace hcl::sim
