// Multiplexing-equivalence suite (DESIGN.md §5j): running the same workload
// at different real-thread caps must change wall-clock behaviour only —
// per-rank simulated clocks and fabric counter totals must come out
// byte-identical. The probe workload is contention-free by construction
// (every rank's reservations land in its own pre-spaced slots), because
// gap-filling under genuine contention is real-arrival-order sensitive by
// design — there the guarantee is totals, not per-op placement (second
// test).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <vector>

#include "fabric/fabric.h"
#include "sim/cluster.h"

namespace hcl::sim {
namespace {

struct RunResult {
  std::vector<Nanos> clocks;
  std::int64_t packets = 0;
  std::int64_t bytes = 0;
  std::int64_t writes = 0;
};

constexpr int kNodes = 4;
constexpr int kProcs = 8;
constexpr int kIters = 16;
constexpr std::size_t kLen = 2048;

RunResult run_spaced_workload(unsigned max_threads) {
  const Topology topo(kNodes, kProcs);
  Cluster cluster(topo, /*seed=*/42);
  fabric::Fabric fab(topo, CostModel::ares());
  // Per-target scratch: each rank writes its own region, no data races.
  std::vector<std::vector<char>> dst(
      static_cast<std::size_t>(kNodes),
      std::vector<char>(static_cast<std::size_t>(kProcs) * kLen, 0));
  std::vector<char> src(kLen, 'x');

  // Slots: ranks sharing a node (and thus a target NIC) are offset by
  // kSlot >> one op's total service, so no two reservations ever overlap
  // and gap-filling serves every request at its arrival time regardless of
  // real scheduling order.
  const Nanos kSlot = 8 * kMicrosecond;
  const Nanos kStride = kSlot * kProcs;
  cluster.run(
      [&](Actor& a) {
        const int local = topo.local_index(a.rank());
        const NodeId target = (a.node() + 1) % kNodes;
        for (int i = 0; i < kIters; ++i) {
          a.advance_to(i * kStride + local * kSlot);
          fab.put(a, target,
                  dst[static_cast<std::size_t>(target)].data() +
                      static_cast<std::size_t>(local) * kLen,
                  src.data(), kLen);
        }
      },
      max_threads);

  RunResult out;
  out.clocks.reserve(static_cast<std::size_t>(topo.num_ranks()));
  for (Rank r = 0; r < topo.num_ranks(); ++r) {
    out.clocks.push_back(cluster.actor(r).now());
  }
  for (NodeId n = 0; n < kNodes; ++n) {
    const auto& c = fab.nic(n).counters();
    out.packets += c.total_packets.load();
    out.bytes += c.total_bytes.load();
    out.writes += c.write_count.load();
  }
  return out;
}

TEST(Multiplex, SimulatedResultsIndependentOfThreadCap) {
  const int ranks = kNodes * kProcs;
  // Satellite acceptance: max_threads = num_ranks (thread per rank),
  // num_ranks/4, and 2 — identical per-rank clocks and counter totals.
  const RunResult full = run_spaced_workload(static_cast<unsigned>(ranks));
  const RunResult quarter =
      run_spaced_workload(static_cast<unsigned>(ranks / 4));
  const RunResult two = run_spaced_workload(2);

  EXPECT_GT(full.writes, 0);
  EXPECT_EQ(full.clocks, quarter.clocks);
  EXPECT_EQ(full.clocks, two.clocks);
  EXPECT_EQ(full.packets, quarter.packets);
  EXPECT_EQ(full.packets, two.packets);
  EXPECT_EQ(full.bytes, quarter.bytes);
  EXPECT_EQ(full.bytes, two.bytes);
  EXPECT_EQ(full.writes, quarter.writes);
  EXPECT_EQ(full.writes, two.writes);
}

TEST(Multiplex, ContendedWorkloadPreservesCounterTotals) {
  // Under genuine contention per-op placement is real-order sensitive (by
  // design; see resource.h), but totals are order-independent sums and the
  // makespan must stay within the window guarantee of the slowest rank.
  const Topology topo(2, 16);
  auto run_once = [&](unsigned max_threads) {
    Cluster cluster(topo, 7);
    fabric::Fabric fab(topo, CostModel::ares());
    std::vector<char> src(kLen, 'y');
    std::vector<std::vector<char>> dst(
        2, std::vector<char>(static_cast<std::size_t>(topo.num_ranks()) *
                             kLen));
    cluster.run(
        [&](Actor& a) {
          const NodeId target = (a.node() + 1) % 2;
          for (int i = 0; i < kIters; ++i) {
            fab.put(a, target,
                    dst[static_cast<std::size_t>(target)].data() +
                        static_cast<std::size_t>(a.rank()) * kLen,
                    src.data(), kLen);
          }
        },
        max_threads);
    std::int64_t packets = 0;
    std::int64_t writes = 0;
    for (NodeId n = 0; n < 2; ++n) {
      packets += fab.nic(n).counters().total_packets.load();
      writes += fab.nic(n).counters().write_count.load();
    }
    return std::pair<std::int64_t, std::int64_t>(packets, writes);
  };
  const auto full = run_once(32);
  const auto four = run_once(4);
  EXPECT_EQ(full, four);
  EXPECT_EQ(full.second, 2LL * 16 * kIters);
}

TEST(Multiplex, ManyRanksOnTinyPoolAllComplete) {
  // Work conservation at a rank:thread ratio near the paper topology's
  // (2560 ranks : ~16 workers): every rank runs exactly once and the
  // window invariant holds throughout.
  const Topology topo(10, 30);  // 300 ranks
  Cluster cluster(topo, 3);
  std::atomic<int> visits{0};
  std::atomic<int> violations{0};
  cluster.run(
      [&](Actor& a) {
        visits.fetch_add(1, std::memory_order_relaxed);
        for (int i = 0; i < 8; ++i) {
          a.advance(ClockWindow::kWindow / 4);
          if (a.now() > a.window()->exact_floor() + ClockWindow::kWindow) {
            violations.fetch_add(1, std::memory_order_relaxed);
          }
        }
      },
      /*max_threads=*/4);
  EXPECT_EQ(visits.load(), 300);
  EXPECT_EQ(violations.load(), 0);
}

}  // namespace
}  // namespace hcl::sim
