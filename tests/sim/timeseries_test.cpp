#include "sim/timeseries.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace hcl::sim {
namespace {

TEST(TimeSeries, BucketsByTime) {
  TimeSeries s(100, 5);
  s.add(0, 1);
  s.add(99, 1);
  s.add(100, 10);
  s.add(450, 7);
  EXPECT_EQ(s.bucket(0), 2);
  EXPECT_EQ(s.bucket(1), 10);
  EXPECT_EQ(s.bucket(4), 7);
  EXPECT_EQ(s.total(), 19);
}

TEST(TimeSeries, OverflowFoldsIntoLastBucket) {
  TimeSeries s(100, 3);
  s.add(10'000, 5);
  EXPECT_EQ(s.bucket(2), 5);
}

TEST(TimeSeries, NegativeTimeGoesToFirstBucket) {
  TimeSeries s(100, 3);
  s.add(-50, 4);
  EXPECT_EQ(s.bucket(0), 4);
}

TEST(TimeSeries, SnapshotMatchesBuckets) {
  TimeSeries s(10, 4);
  s.add(5, 1);
  s.add(35, 2);
  auto snap = s.snapshot();
  ASSERT_EQ(snap.size(), 4u);
  EXPECT_EQ(snap[0], 1);
  EXPECT_EQ(snap[3], 2);
}

TEST(TimeSeries, ConcurrentAddsAreLossless) {
  TimeSeries s(10, 8);
  constexpr int kThreads = 8;
  constexpr int kAdds = 50'000;
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&s] {
      for (int i = 0; i < kAdds; ++i) s.add((i % 8) * 10, 1);
    });
  }
  for (auto& t : pool) t.join();
  EXPECT_EQ(s.total(), static_cast<std::int64_t>(kThreads) * kAdds);
}

TEST(TimeSeries, Reset) {
  TimeSeries s(10, 2);
  s.add(0, 5);
  s.reset();
  EXPECT_EQ(s.total(), 0);
}

TEST(GaugeSeries, KeepsMaxPerBucket) {
  GaugeSeries g(100, 4);
  g.record(0, 10);
  g.record(50, 5);   // lower — ignored
  g.record(60, 20);  // higher — kept
  EXPECT_EQ(g.snapshot_filled()[0], 20);
}

TEST(GaugeSeries, ForwardFillsEmptyBuckets) {
  GaugeSeries g(100, 4);
  g.record(0, 7);
  g.record(350, 12);
  auto snap = g.snapshot_filled();
  EXPECT_EQ(snap[0], 7);
  EXPECT_EQ(snap[1], 7);  // filled from bucket 0
  EXPECT_EQ(snap[2], 7);
  EXPECT_EQ(snap[3], 12);
}

TEST(GaugeSeries, ConcurrentRecordKeepsMax) {
  GaugeSeries g(10, 1);
  std::vector<std::thread> pool;
  for (int t = 0; t < 8; ++t) {
    pool.emplace_back([&g, t] {
      for (int i = 0; i < 10'000; ++i) g.record(0, t * 10'000 + i);
    });
  }
  for (auto& t : pool) t.join();
  EXPECT_EQ(g.snapshot_filled()[0], 7 * 10'000 + 9'999);
}

}  // namespace
}  // namespace hcl::sim
