#include "memory/segment.h"

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>

namespace hcl::mem {
namespace {

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(Segment, HeapSegmentChargesBudget) {
  NodeMemory node(0, 1 << 20);
  auto s = Segment::create(node, 4096);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(node.used(), 4096);
  EXPECT_TRUE(s->valid());
  EXPECT_FALSE(s->persistent());
}

TEST(Segment, ZeroInitialized) {
  NodeMemory node(0, 1 << 20);
  auto s = Segment::create(node, 256);
  ASSERT_TRUE(s.ok());
  for (std::size_t i = 0; i < 256; ++i) EXPECT_EQ(s->data()[i], std::byte{0});
}

TEST(Segment, DestructorReleasesBudget) {
  NodeMemory node(0, 1 << 20);
  {
    auto s = Segment::create(node, 4096);
    ASSERT_TRUE(s.ok());
  }
  EXPECT_EQ(node.used(), 0);
}

TEST(Segment, CreateFailsOverBudget) {
  NodeMemory node(0, 100);
  auto s = Segment::create(node, 4096);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.status().code(), StatusCode::kOutOfMemory);
  EXPECT_EQ(node.used(), 0);
}

TEST(Segment, ResizeGrowPreservesData) {
  NodeMemory node(0, 1 << 20);
  auto s = Segment::create(node, 16);
  ASSERT_TRUE(s.ok());
  std::memcpy(s->data(), "abcdefghijklmnop", 16);
  ASSERT_TRUE(s->resize(1024).ok());
  EXPECT_EQ(std::memcmp(s->data(), "abcdefghijklmnop", 16), 0);
  EXPECT_EQ(node.used(), 1024);
  // Grown tail is zeroed.
  EXPECT_EQ(s->data()[1023], std::byte{0});
}

TEST(Segment, ResizeShrinkReleasesBudget) {
  NodeMemory node(0, 1 << 20);
  auto s = Segment::create(node, 1024);
  ASSERT_TRUE(s.ok());
  ASSERT_TRUE(s->resize(256).ok());
  EXPECT_EQ(node.used(), 256);
  EXPECT_EQ(s->size(), 256u);
}

TEST(Segment, ResizeFailsOverBudgetWithoutSideEffects) {
  NodeMemory node(0, 1'000);
  auto s = Segment::create(node, 500);
  ASSERT_TRUE(s.ok());
  Status st = s->resize(2'000);
  EXPECT_EQ(st.code(), StatusCode::kOutOfMemory);
  EXPECT_EQ(s->size(), 500u);
  EXPECT_EQ(node.used(), 500);
}

TEST(Segment, CheckRange) {
  NodeMemory node(0, 1 << 20);
  auto s = Segment::create(node, 100);
  ASSERT_TRUE(s.ok());
  EXPECT_TRUE(s->check_range(0, 100).ok());
  EXPECT_TRUE(s->check_range(90, 10).ok());
  EXPECT_FALSE(s->check_range(90, 11).ok());
  EXPECT_FALSE(s->check_range(~std::size_t{0}, 2).ok());  // overflow guard
}

TEST(Segment, PersistentSegmentWritesThroughFile) {
  NodeMemory node(0, 1 << 20);
  const auto path = temp_path("hcl_seg_persist.bin");
  {
    auto s = Segment::create_persistent(node, 128, path, SyncMode::kPerOp);
    ASSERT_TRUE(s.ok()) << s.status().to_string();
    EXPECT_TRUE(s->persistent());
    std::memcpy(s->data(), "durable", 7);
    EXPECT_TRUE(s->sync_after_write().ok());
  }
  auto reopened = Segment::create_persistent(node, 128, path, SyncMode::kRelaxed);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(std::memcmp(reopened->data(), "durable", 7), 0);
  reopened = Segment();  // close before unlink
  std::filesystem::remove(path);
}

TEST(Segment, SyncAfterWriteIsNoOpForRelaxedAndVolatile) {
  NodeMemory node(0, 1 << 20);
  auto heap = Segment::create(node, 64);
  ASSERT_TRUE(heap.ok());
  EXPECT_TRUE(heap->sync_after_write().ok());

  const auto path = temp_path("hcl_seg_relaxed.bin");
  auto relaxed = Segment::create_persistent(node, 64, path, SyncMode::kRelaxed);
  ASSERT_TRUE(relaxed.ok());
  EXPECT_TRUE(relaxed->sync_after_write().ok());  // defers to background
  EXPECT_TRUE(relaxed->sync().ok());              // explicit flush works
  relaxed = Segment();
  std::filesystem::remove(path);
}

TEST(Segment, MoveTransfersBudgetOwnership) {
  NodeMemory node(0, 1 << 20);
  auto s = Segment::create(node, 512);
  ASSERT_TRUE(s.ok());
  Segment t = std::move(s.value());
  EXPECT_EQ(node.used(), 512);
  t = Segment();
  EXPECT_EQ(node.used(), 0);
}

}  // namespace
}  // namespace hcl::mem
