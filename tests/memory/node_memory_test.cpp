#include "memory/node_memory.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace hcl::mem {
namespace {

TEST(NodeMemory, ReserveWithinBudget) {
  NodeMemory m(0, 1'000);
  EXPECT_TRUE(m.reserve(400, 0).ok());
  EXPECT_TRUE(m.reserve(600, 0).ok());
  EXPECT_EQ(m.used(), 1'000);
}

TEST(NodeMemory, RejectsOverBudget) {
  NodeMemory m(0, 1'000);
  EXPECT_TRUE(m.reserve(900, 0).ok());
  Status s = m.reserve(200, 0);
  EXPECT_EQ(s.code(), StatusCode::kOutOfMemory);
  // Failed reservation must not change accounting.
  EXPECT_EQ(m.used(), 900);
}

TEST(NodeMemory, ReleaseRestoresHeadroom) {
  NodeMemory m(0, 1'000);
  ASSERT_TRUE(m.reserve(1'000, 0).ok());
  m.release(500, 0);
  EXPECT_EQ(m.used(), 500);
  EXPECT_TRUE(m.reserve(500, 0).ok());
}

TEST(NodeMemory, PeakTracksHighWater) {
  NodeMemory m(0, 1'000);
  ASSERT_TRUE(m.reserve(800, 0).ok());
  m.release(700, 0);
  ASSERT_TRUE(m.reserve(100, 0).ok());
  EXPECT_EQ(m.peak(), 800);
  EXPECT_EQ(m.used(), 200);
}

TEST(NodeMemory, GaugeRecordsResidentBytes) {
  sim::GaugeSeries gauge(100, 4);
  NodeMemory m(0, 10'000, &gauge);
  ASSERT_TRUE(m.reserve(3'000, 50).ok());
  ASSERT_TRUE(m.reserve(4'000, 250).ok());
  auto snap = gauge.snapshot_filled();
  EXPECT_EQ(snap[0], 3'000);
  EXPECT_EQ(snap[2], 7'000);
}

TEST(NodeMemory, ConcurrentReservationsNeverExceedBudget) {
  NodeMemory m(0, 10'000);
  std::atomic<int> granted{0};
  std::vector<std::thread> pool;
  for (int t = 0; t < 8; ++t) {
    pool.emplace_back([&] {
      for (int i = 0; i < 1'000; ++i) {
        if (m.reserve(7, 0).ok()) granted.fetch_add(1);
      }
    });
  }
  for (auto& t : pool) t.join();
  EXPECT_LE(m.used(), 10'000);
  EXPECT_EQ(m.used(), granted.load() * 7);
}

}  // namespace
}  // namespace hcl::mem
