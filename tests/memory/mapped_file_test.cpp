#include "memory/mapped_file.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>

namespace hcl::mem {
namespace {

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

class MappedFileTest : public ::testing::Test {
 protected:
  void TearDown() override {
    for (const auto& p : cleanup_) std::filesystem::remove(p);
  }
  std::string track(const std::string& p) {
    cleanup_.push_back(p);
    return p;
  }
  std::vector<std::string> cleanup_;
};

TEST_F(MappedFileTest, CreatesAndMaps) {
  auto path = track(temp_path("hcl_mf_create.bin"));
  auto f = MappedFile::open(path, 4096);
  ASSERT_TRUE(f.ok()) << f.status().to_string();
  EXPECT_EQ(f->size(), 4096u);
  EXPECT_TRUE(f->is_open());
  EXPECT_EQ(std::filesystem::file_size(path), 4096u);
}

TEST_F(MappedFileTest, WritesPersistAfterSync) {
  auto path = track(temp_path("hcl_mf_persist.bin"));
  {
    auto f = MappedFile::open(path, 64);
    ASSERT_TRUE(f.ok());
    std::memcpy(f->data(), "hello durable world", 19);
    ASSERT_TRUE(f->sync(true).ok());
  }  // destructor unmaps
  std::ifstream in(path, std::ios::binary);
  char buf[19] = {};
  in.read(buf, 19);
  EXPECT_EQ(std::string(buf, 19), "hello durable world");
}

TEST_F(MappedFileTest, ReopenSeesPreviousContents) {
  auto path = track(temp_path("hcl_mf_reopen.bin"));
  {
    auto f = MappedFile::open(path, 32);
    ASSERT_TRUE(f.ok());
    f->data()[0] = std::byte{0xAB};
    ASSERT_TRUE(f->sync().ok());
  }
  auto g = MappedFile::open(path, 32);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->data()[0], std::byte{0xAB});
}

TEST_F(MappedFileTest, ResizeGrowsPreservingContents) {
  auto path = track(temp_path("hcl_mf_grow.bin"));
  auto f = MappedFile::open(path, 16);
  ASSERT_TRUE(f.ok());
  std::memcpy(f->data(), "0123456789abcdef", 16);
  ASSERT_TRUE(f->resize(4096).ok());
  EXPECT_EQ(f->size(), 4096u);
  EXPECT_EQ(std::memcmp(f->data(), "0123456789abcdef", 16), 0);
  // New region must be usable.
  f->data()[4095] = std::byte{0x7F};
  EXPECT_TRUE(f->sync().ok());
}

TEST_F(MappedFileTest, MoveTransfersOwnership) {
  auto path = track(temp_path("hcl_mf_move.bin"));
  auto f = MappedFile::open(path, 64);
  ASSERT_TRUE(f.ok());
  MappedFile g = std::move(f.value());
  EXPECT_TRUE(g.is_open());
  EXPECT_EQ(g.size(), 64u);
}

TEST_F(MappedFileTest, AsyncSyncAlsoReachesDisk) {
  auto path = track(temp_path("hcl_mf_async.bin"));
  auto f = MappedFile::open(path, 64);
  ASSERT_TRUE(f.ok());
  std::memset(f->data(), 0x42, 64);
  EXPECT_TRUE(f->sync(false).ok());  // MS_ASYNC — must not error
}

TEST_F(MappedFileTest, OpenFailsOnBadPath) {
  auto f = MappedFile::open("/nonexistent-dir-zzz/file.bin", 64);
  EXPECT_FALSE(f.ok());
  EXPECT_EQ(f.status().code(), StatusCode::kInternal);
}

TEST_F(MappedFileTest, SyncOnClosedFails) {
  MappedFile f;
  EXPECT_EQ(f.sync().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace hcl::mem
