// The RoR error protocol under injected fabric faults: every failure mode —
// throwing handlers, lost/duplicated requests, NIC stalls, transient NACKs,
// expired deadlines — must surface as a definite Status on the future.
// Never an unfulfilled state, never an exception crossing the stub boundary.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "fabric/fault_plan.h"
#include "rpc/engine.h"

namespace hcl::rpc {
namespace {

using fabric::FaultKind;
using fabric::FaultPlan;
using fabric::FaultProbabilities;
using fabric::OpClass;
using sim::Actor;
using sim::CostModel;
using sim::Nanos;
using sim::Topology;

struct FaultTest : ::testing::Test {
  FaultTest()
      : plan(std::make_shared<FaultPlan>(7)),
        fabric(Topology(2, 2), CostModel::ares()),
        engine(fabric) {
    fabric.set_fault_plan(plan);
  }
  std::shared_ptr<FaultPlan> plan;
  fabric::Fabric fabric;
  Engine engine;
};

// ---------------------------------------------------------------------------
// Handler exception containment (the future-hang bugfix).
// ---------------------------------------------------------------------------

TEST_F(FaultTest, RuntimeErrorHandlerResolvesInternal) {
  const FuncId boom = engine.bind<int>([](ServerCtx&) -> int {
    throw std::runtime_error("boom");
  });
  Actor client(0, 0, 1);
  auto f = engine.async_invoke<int>(client, 1, boom);
  const Status st = f.wait(client);
  EXPECT_EQ(st.code(), StatusCode::kInternal);
  EXPECT_NE(st.message().find("boom"), std::string::npos);
  // get() on the same error surfaces it as HclError, not a hang or crash.
  auto g = engine.async_invoke<int>(client, 1, boom);
  EXPECT_THROW(g.get(client), HclError);
}

TEST_F(FaultTest, NonExceptionThrowResolvesInternal) {
  const FuncId weird = engine.bind_raw(
      [](ServerCtx&, std::span<const std::byte>) -> std::vector<std::byte> {
        throw 42;  // NOLINT: deliberately not a std::exception
      });
  Actor client(0, 0, 1);
  EXPECT_EQ(engine.async_invoke<int>(client, 1, weird).wait(client).code(),
            StatusCode::kInternal);
}

TEST_F(FaultTest, ThrowingChainedStageResolvesAsStatus) {
  const FuncId produce =
      engine.bind<int, int>([](ServerCtx&, const int& v) { return v; });
  const FuncId bad_stage = engine.bind_raw(
      [](ServerCtx&, std::span<const std::byte>) -> std::vector<std::byte> {
        throw std::runtime_error("stage died");
      });
  Actor client(0, 0, 1);
  auto f = engine.async_invoke_chain<int>(client, 1, produce, {bad_stage}, 3);
  EXPECT_EQ(f.wait(client).code(), StatusCode::kInternal);
}

TEST_F(FaultTest, MissingChainedHandlerIsNotFound) {
  const FuncId produce =
      engine.bind<int, int>([](ServerCtx&, const int& v) { return v; });
  Actor client(0, 0, 1);
  auto f = engine.async_invoke_chain<int>(client, 1, produce,
                                          {/*unbound=*/424'242}, 3);
  EXPECT_EQ(f.wait(client).code(), StatusCode::kNotFound);
}

TEST_F(FaultTest, ErrorPathStillChargesNicBusyTime) {
  // The handler consumes simulated NIC-core time, then fails; Fig. 4a
  // utilization must include that span (success and failure alike).
  const FuncId charge_then_throw = engine.bind<int>([this](ServerCtx& ctx) -> int {
    ctx.finish = fabric.local_write(ctx.node, ctx.start, 1 << 20);
    throw HclError(Status::Capacity("full after work"));
  });
  Actor client(0, 0, 1);
  const auto before =
      fabric.nic(1).counters().handler_busy_ns.load(std::memory_order_relaxed);
  EXPECT_EQ(engine.async_invoke<int>(client, 1, charge_then_throw).wait(client).code(),
            StatusCode::kCapacity);
  const auto after =
      fabric.nic(1).counters().handler_busy_ns.load(std::memory_order_relaxed);
  EXPECT_GE(after - before, fabric.model().mem_write_time(1 << 20));
}

// ---------------------------------------------------------------------------
// Null-state Future guards.
// ---------------------------------------------------------------------------

TEST(FutureGuards, DefaultConstructedFutureFailsLoudly) {
  Future<int> f;
  EXPECT_FALSE(f.valid());
  EXPECT_FALSE(f.ready());  // safe probe, no throw
  EXPECT_THROW((void)f.response_ready_ns(), HclError);
  EXPECT_THROW(f.then([] {}), HclError);
  Actor client(0, 0, 1);
  EXPECT_THROW((void)f.get(client), HclError);
  EXPECT_THROW((void)f.wait(client), HclError);
  try {
    (void)f.response_ready_ns();
    FAIL() << "expected HclError";
  } catch (const HclError& e) {
    EXPECT_EQ(e.code(), StatusCode::kFailedPrecondition);
  }
}

// ---------------------------------------------------------------------------
// Injected faults -> engine retry policy.
// ---------------------------------------------------------------------------

TEST_F(FaultTest, RetryUntilSuccessAfterDrops) {
  const FuncId echo =
      engine.bind<int, int>([](ServerCtx&, const int& v) { return v; });
  plan->trigger_at(1, OpClass::kRpc, 0, FaultKind::kDrop);
  plan->trigger_at(1, OpClass::kRpc, 1, FaultKind::kDrop);
  Actor client(0, 0, 1);
  InvokeOptions opts;
  opts.max_retries = 3;
  auto f = engine.async_invoke_opt<int>(client, 1, echo, opts, 9);
  EXPECT_TRUE(f.wait(client).ok());
  EXPECT_EQ(plan->counters().drops.load(), 2);
  EXPECT_GE(fabric.nic(1).counters().rpc_retries.load(), 2);
  // Each lost request costs a full lost-request timeout in simulated time.
  EXPECT_GE(f.response_ready_ns(),
            2 * fabric.model().rpc_lost_request_timeout_ns);
}

TEST_F(FaultTest, DropsExhaustRetriesToDeadlineExceeded) {
  const FuncId echo =
      engine.bind<int, int>([](ServerCtx&, const int& v) { return v; });
  FaultProbabilities p;
  p.drop = 1.0;
  plan->set_node(1, OpClass::kRpc, p);
  Actor client(0, 0, 1);
  InvokeOptions opts;
  opts.max_retries = 2;
  auto f = engine.async_invoke_opt<int>(client, 1, echo, opts, 1);
  EXPECT_EQ(f.wait(client).code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(plan->counters().drops.load(), 3);  // initial try + 2 retries
  EXPECT_GE(fabric.nic(1).counters().rpc_timeouts.load(), 1);
}

TEST_F(FaultTest, DropWithNoDeadlineStillResolves) {
  // timeout_ns == 0 ("wait forever") must NOT mean an unfulfilled future
  // when the request is lost: the lost-request timeout kicks in.
  const FuncId echo =
      engine.bind<int, int>([](ServerCtx&, const int& v) { return v; });
  FaultProbabilities p;
  p.drop = 1.0;
  plan->set_node(1, OpClass::kRpc, p);
  Actor client(0, 0, 1);
  auto f = engine.async_invoke<int>(client, 1, echo, 5);
  EXPECT_EQ(f.wait(client).code(), StatusCode::kDeadlineExceeded);
  EXPECT_GE(f.response_ready_ns(), fabric.model().rpc_lost_request_timeout_ns);
}

TEST_F(FaultTest, TransientUnavailableRetriesThenSucceeds) {
  const FuncId echo =
      engine.bind<int, int>([](ServerCtx&, const int& v) { return v; });
  plan->trigger_at(1, OpClass::kRpc, 0, FaultKind::kUnavailable);
  Actor client(0, 0, 1);
  InvokeOptions opts;
  opts.max_retries = 1;
  EXPECT_EQ((engine.invoke_opt<int>(client, 1, echo, opts, 11)), 11);
  EXPECT_EQ(plan->counters().unavailable.load(), 1);
  EXPECT_EQ(fabric.nic(1).counters().rpc_retries.load(), 1);
}

TEST_F(FaultTest, UnavailableWithoutRetriesSurfaces) {
  const FuncId echo =
      engine.bind<int, int>([](ServerCtx&, const int& v) { return v; });
  plan->trigger_at(1, OpClass::kRpc, 0, FaultKind::kUnavailable);
  Actor client(0, 0, 1);
  EXPECT_EQ(engine.async_invoke<int>(client, 1, echo, 1).wait(client).code(),
            StatusCode::kUnavailable);
}

TEST_F(FaultTest, DeadlineExpiryOnSlowHandler) {
  // The handler takes ~3 ms of simulated time; the client allows 100 us.
  const FuncId slow = engine.bind<int>([this](ServerCtx& ctx) {
    ctx.finish = fabric.local_write(ctx.node, ctx.start, 16 << 20);
    return 1;
  });
  Actor client(0, 0, 1);
  InvokeOptions opts;
  opts.timeout_ns = 100 * sim::kMicrosecond;
  auto f = engine.async_invoke_opt<int>(client, 1, slow, opts);
  EXPECT_EQ(f.wait(client).code(), StatusCode::kDeadlineExceeded);
  // The future resolves at the deadline, not at the handler's finish.
  EXPECT_LE(f.response_ready_ns(),
            client.now() + opts.timeout_ns + fabric.model().net_base_latency_ns);
  EXPECT_GE(fabric.nic(1).counters().rpc_timeouts.load(), 1);
}

TEST_F(FaultTest, DuplicateDeliveryRunsHandlerTwice) {
  std::atomic<int> hits{0};
  const FuncId count = engine.bind<int, int>([&](ServerCtx&, const int& v) {
    hits.fetch_add(1);
    return v;
  });
  plan->trigger_at(1, OpClass::kRpc, 0, FaultKind::kDuplicate);
  Actor client(0, 0, 1);
  // The response is still well-formed and correct; idempotent handlers make
  // duplicate delivery invisible to the caller.
  EXPECT_EQ((engine.invoke<int>(client, 1, count, 4)), 4);
  EXPECT_EQ(hits.load(), 2);
  EXPECT_EQ(plan->counters().duplicates.load(), 1);
}

TEST_F(FaultTest, InjectedThrowFaultResolvesInternal) {
  const FuncId echo =
      engine.bind<int, int>([](ServerCtx&, const int& v) { return v; });
  plan->trigger_at(1, OpClass::kRpc, 0, FaultKind::kThrow);
  Actor client(0, 0, 1);
  const Status st = engine.async_invoke<int>(client, 1, echo, 1).wait(client);
  EXPECT_EQ(st.code(), StatusCode::kInternal);
  EXPECT_NE(st.message().find("injected"), std::string::npos);
  EXPECT_EQ(plan->counters().throws.load(), 1);
}

TEST_F(FaultTest, DelayFaultLengthensResponseTime) {
  const FuncId echo =
      engine.bind<int, int>([](ServerCtx&, const int& v) { return v; });
  Actor a(0, 0, 1), b(1, 0, 2);
  auto clean = engine.async_invoke<int>(a, 1, echo, 1);
  (void)clean.wait(a);
  FaultProbabilities p;
  p.delay = 1.0;
  p.delay_ns = 500 * sim::kMicrosecond;
  plan->set_node(1, OpClass::kRpc, p);
  auto stalled = engine.async_invoke<int>(b, 1, echo, 1);
  EXPECT_TRUE(stalled.wait(b).ok());
  EXPECT_GE(stalled.response_ready_ns() - clean.response_ready_ns(),
            p.delay_ns);
  EXPECT_EQ(plan->counters().delays.load(), 1);
}

TEST_F(FaultTest, OneSidedVerbsSufferNicStalls) {
  FaultProbabilities p;
  p.delay = 1.0;
  p.delay_ns = 250 * sim::kMicrosecond;
  plan->set_node(1, OpClass::kOneSided, p);
  Actor client(0, 0, 1);
  std::uint64_t src = 42, dst = 0;
  fabric.put(client, 1, &dst, &src, sizeof(src));
  EXPECT_EQ(dst, 42u);  // data still moves
  EXPECT_GE(client.now(), p.delay_ns);
}

// ---------------------------------------------------------------------------
// Determinism and mixed seeded runs.
// ---------------------------------------------------------------------------

TEST(FaultPlanDeterminism, SameSeedSameDecisions) {
  FaultProbabilities p;
  p.drop = 0.2;
  p.delay = 0.3;
  p.throw_handler = 0.1;
  p.unavailable = 0.15;
  FaultPlan a(99), b(99), c(100);
  a.set(OpClass::kRpc, p);
  b.set(OpClass::kRpc, p);
  c.set(OpClass::kRpc, p);
  bool differs_from_c = false;
  for (int i = 0; i < 256; ++i) {
    const auto da = a.next(3, OpClass::kRpc);
    const auto db = b.next(3, OpClass::kRpc);
    const auto dc = c.next(3, OpClass::kRpc);
    EXPECT_EQ(da.drop, db.drop);
    EXPECT_EQ(da.duplicate, db.duplicate);
    EXPECT_EQ(da.throw_handler, db.throw_handler);
    EXPECT_EQ(da.unavailable, db.unavailable);
    EXPECT_EQ(da.delay_ns, db.delay_ns);
    differs_from_c |= (da.drop != dc.drop) || (da.delay_ns != dc.delay_ns) ||
                      (da.unavailable != dc.unavailable);
  }
  EXPECT_TRUE(differs_from_c);  // different seed, different fault schedule
  EXPECT_EQ(a.ops_seen(3, OpClass::kRpc), 256u);
}

TEST_F(FaultTest, SeededMixedFaultsAlwaysResolveDefinite) {
  const FuncId echo =
      engine.bind<int, int>([](ServerCtx&, const int& v) { return v; });
  FaultProbabilities p;
  p.drop = 0.05;
  p.delay = 0.05;
  p.throw_handler = 0.03;
  p.unavailable = 0.05;
  p.duplicate = 0.03;
  plan->set(OpClass::kRpc, p);
  Actor client(0, 0, 1);
  InvokeOptions opts;
  opts.max_retries = 4;
  opts.timeout_ns = 5 * sim::kMillisecond;
  int ok = 0, failed = 0;
  for (int i = 0; i < 400; ++i) {
    auto f = engine.async_invoke_opt<int>(client, 1, echo, opts, i);
    const Status st = f.wait(client);
    switch (st.code()) {
      case StatusCode::kOk:
        ++ok;
        break;
      case StatusCode::kInternal:
      case StatusCode::kDeadlineExceeded:
      case StatusCode::kUnavailable:
        ++failed;
        break;
      default:
        FAIL() << "unexpected status " << st.to_string();
    }
  }
  EXPECT_EQ(ok + failed, 400);
  EXPECT_GT(ok, 300);                        // retries absorb most faults
  EXPECT_GT(plan->counters().total(), 0);    // but faults really fired
}

// ---------------------------------------------------------------------------
// send_request local-path timing (hybrid-vs-remote fairness fix).
// ---------------------------------------------------------------------------

TEST(SendRequestTiming, LocalPathChargesInjectionOverhead) {
  fabric::Fabric fabric(Topology(2, 1), CostModel::ares());
  Actor client(0, 0, 1);
  // Node-local request-buffer write begins only after the local doorbell
  // charge (DESIGN.md §5i): "local" pays the same shm_doorbell_ns rate the
  // shared-memory tier uses, not the NIC WQE injection overhead.
  const Nanos arrival = fabric.send_request(client, 0, 0);
  EXPECT_GE(arrival, fabric.model().shm_doorbell_ns);
  EXPECT_LT(arrival, fabric.model().wire_overhead_ns + fabric.model().net_base_latency_ns);
}

TEST(SendRequestTiming, NotBeforeDefersReissue) {
  fabric::Fabric fabric(Topology(2, 1), CostModel::ares());
  Actor client(0, 0, 1);
  Nanos issued = 0;
  const Nanos resend_at = 3 * sim::kMillisecond;
  const Nanos arrival = fabric.send_request(client, 1, 64, resend_at, &issued);
  EXPECT_EQ(issued, resend_at);
  EXPECT_GE(arrival, resend_at + fabric.model().net_base_latency_ns);
  // The async caller's own clock only pays the injection overhead.
  EXPECT_LT(client.now(), resend_at);
}

// ---------------------------------------------------------------------------
// Exponential back-off saturation (max_backoff_ns clamp).
// ---------------------------------------------------------------------------

// A long retry budget used to overflow the grown back-off (the int64 cast of
// backoff * multiplier wrapped negative), sending re-sends BACKWARDS in
// simulated time. With the clamp the schedule is exactly computable: capped
// exponential back-off, every re-send strictly later than the last.
TEST(BackoffClamp, LongRetryBudgetSaturatesAtMaxBackoff) {
  fabric::Fabric fabric(Topology(2, 1), CostModel::zero());
  Engine engine(fabric);
  auto plan = std::make_shared<FaultPlan>(3);
  FaultProbabilities p;
  p.drop = 1.0;  // every attempt is lost; the client walks the full schedule
  plan->set(OpClass::kRpc, p);
  fabric.set_fault_plan(plan);
  const FuncId echo =
      engine.bind<int, int>([](ServerCtx&, const int& v) { return v; });

  Actor client(0, 0, 1);
  InvokeOptions opts;
  opts.timeout_ns = 1'000;
  opts.max_retries = 64;  // x4 growth overflows int64 by retry 31 unclamped
  opts.backoff_ns = 1'000;
  opts.backoff_multiplier = 4.0;
  opts.max_backoff_ns = 1'000'000;
  auto f = engine.async_invoke_opt<int>(client, 1, echo, opts, 7);
  EXPECT_EQ(f.wait(client).code(), StatusCode::kDeadlineExceeded);
  // 65 attempts x 1 us timeout, back-offs 1+4+16+64+256 us, then 59 saturated
  // at the 1 ms cap. Any overflow would shatter this exact total.
  EXPECT_EQ(client.now(), 59'406'000);
  EXPECT_EQ(fabric.nic(1).counters().rpc_retries.load(), 64);
}

// ---------------------------------------------------------------------------
// Node membership (DESIGN.md §5f): fail_node / rejoin_node and the engine's
// failover plumbing on top of them.
// ---------------------------------------------------------------------------

TEST_F(FaultTest, FailNodeShortCircuitsDecide) {
  plan->fail_node(1);
  const auto d = plan->decide(1, OpClass::kRpc, 0);
  EXPECT_TRUE(d.node_down);
  EXPECT_TRUE(d.any());
  EXPECT_EQ(plan->counters().node_down_rejections.load(), 1);
  // Membership rejections are bookkeeping, not injected faults: total()
  // still reads zero so fault-budget assertions stay unchanged.
  EXPECT_EQ(plan->counters().total(), 0);
  plan->rejoin_node(1);
  EXPECT_FALSE(plan->node_down(1));
  EXPECT_FALSE(plan->decide(1, OpClass::kRpc, 1).node_down);
}

TEST_F(FaultTest, InvokeAgainstDownNodeFailsFastUnavailable) {
  const FuncId echo =
      engine.bind<int, int>([](ServerCtx&, const int& v) { return v; });
  plan->fail_node(1);
  Actor client(0, 0, 1);
  auto f = engine.async_invoke<int>(client, 1, echo, 7);
  const Status st = f.wait(client);
  EXPECT_EQ(st.code(), StatusCode::kUnavailable);
  EXPECT_NE(st.message().find("node down"), std::string::npos);
  // Fail-fast: no retry schedule was walked against a dead node.
  EXPECT_EQ(fabric.nic(1).counters().rpc_retries.load(), 0);
  plan->rejoin_node(1);
  EXPECT_EQ(engine.invoke<int>(client, 1, echo, 7), 7);
}

TEST_F(FaultTest, RouteTableMarksAndClears) {
  RouteTable& route = engine.route();
  EXPECT_FALSE(route.is_down(1));
  route.mark_down(1);
  EXPECT_TRUE(route.is_down(1));
  EXPECT_FALSE(route.is_down(0));
  route.mark_up(1);
  EXPECT_FALSE(route.is_down(1));
  route.mark_down(0);
  route.mark_down(1);
  route.reset();
  EXPECT_FALSE(route.is_down(0));
  EXPECT_FALSE(route.is_down(1));
}

TEST_F(FaultTest, FailoverInvokeBumpsStandbyCounter) {
  const FuncId echo =
      engine.bind<int, int>([](ServerCtx&, const int& v) { return v; });
  Actor client(0, 0, 1);
  auto f = engine.async_invoke_failover<int>(client, 1, echo, 9);
  EXPECT_EQ(f.get(client), 9);
  EXPECT_EQ(fabric.nic(1).counters().failovers.load(), 1);
}

TEST_F(FaultTest, ServerInvokeSkipsDownTarget) {
  std::atomic<int> executed{0};
  const FuncId fanout = engine.bind<bool, int>(
      [&executed](ServerCtx&, const int&) {
        executed.fetch_add(1);
        return true;
      });
  plan->fail_node(1);
  engine.server_invoke(0, 1, 0, fanout, 5);  // absorbed, never executes
  EXPECT_EQ(executed.load(), 0);
  plan->rejoin_node(1);
  engine.server_invoke(0, 1, 0, fanout, 5);
  EXPECT_EQ(executed.load(), 1);
}

}  // namespace
}  // namespace hcl::rpc
