// The op coalescer (rpc::Batcher + Engine::send_batch): flush triggers
// (count, bytes, simulated-time window), FIFO order within a destination,
// per-op status isolation under injected mid-batch faults, whole-bundle
// transport faults through the retry policy, shared single-pull charging,
// and the dangling-future guard on batched invokes.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "fabric/fault_plan.h"
#include "rpc/batch.h"
#include "rpc/engine.h"

namespace hcl::rpc {
namespace {

using fabric::FaultKind;
using fabric::FaultPlan;
using fabric::FaultProbabilities;
using fabric::OpClass;
using sim::Actor;
using sim::CostModel;
using sim::Nanos;
using sim::Topology;

/// Functional fixture: zero cost model so only semantics matter, plus a
/// server-side tape recording handler execution order.
struct BatchTest : ::testing::Test {
  BatchTest()
      : plan(std::make_shared<FaultPlan>(7)),
        fabric(Topology(2, 2), CostModel::zero()),
        engine(fabric) {
    fabric.set_fault_plan(plan);
    echo_id = engine.bind<int, int>([this](ServerCtx& sctx, const int& v) {
      std::lock_guard<std::mutex> guard(tape_mutex);
      tape.push_back(v);
      sctx.finish = sctx.start;
      return v * 2;
    });
  }

  /// A policy that never auto-flushes — explicit flush only.
  static BatchPolicy manual() {
    BatchPolicy p;
    p.max_ops = 1u << 20;
    p.max_bytes = 1u << 30;
    p.max_delay_ns = 0;
    return p;
  }

  std::shared_ptr<FaultPlan> plan;
  fabric::Fabric fabric;
  Engine engine;
  FuncId echo_id = 0;
  std::mutex tape_mutex;
  std::vector<int> tape;
};

// ---------------------------------------------------------------------------
// Flush triggers.
// ---------------------------------------------------------------------------

TEST_F(BatchTest, FlushOnOpCountThreshold) {
  BatchPolicy policy = manual();
  policy.max_ops = 4;
  Batcher batcher(engine, policy);
  Actor client(0, 0, 1);
  std::vector<Future<int>> futures;
  for (int i = 0; i < 3; ++i) {
    futures.push_back(batcher.enqueue<int>(client, 1, echo_id, i));
    EXPECT_FALSE(futures.back().ready());  // still coalescing
  }
  EXPECT_EQ(batcher.pending_ops(1), 3u);
  futures.push_back(batcher.enqueue<int>(client, 1, echo_id, 3));  // trips
  EXPECT_EQ(batcher.pending_ops(1), 0u);
  EXPECT_EQ(batcher.flushes(), 1);
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(futures[static_cast<std::size_t>(i)].ready());
    EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(client), i * 2);
  }
}

TEST_F(BatchTest, FlushOnByteThreshold) {
  BatchPolicy policy = manual();
  policy.max_bytes = 64;  // each op carries ~8B payload + 16B framing
  Batcher batcher(engine, policy);
  Actor client(0, 0, 1);
  std::vector<Future<int>> futures;
  for (int i = 0; i < 6; ++i) {
    futures.push_back(batcher.enqueue<int>(client, 1, echo_id, i));
  }
  EXPECT_GE(batcher.flushes(), 1);        // tripped by bytes, not count
  EXPECT_LT(batcher.pending_ops(1), 6u);  // something shipped
  batcher.flush_all(client);
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(client), i * 2);
  }
}

TEST_F(BatchTest, FlushOnSimulatedTimeWindow) {
  BatchPolicy policy = manual();
  policy.max_delay_ns = 10 * sim::kMicrosecond;
  Batcher batcher(engine, policy);
  Actor client(0, 0, 1);
  auto first = batcher.enqueue<int>(client, 1, echo_id, 1);
  EXPECT_FALSE(first.ready());
  client.advance(20 * sim::kMicrosecond);  // the window expires in sim time
  auto second = batcher.enqueue<int>(client, 1, echo_id, 2);  // linger trips
  EXPECT_TRUE(first.ready());
  EXPECT_TRUE(second.ready());
  EXPECT_EQ(batcher.flushes(), 1);
  EXPECT_EQ(first.get(client), 2);
  EXPECT_EQ(second.get(client), 4);
}

TEST_F(BatchTest, PollFlushesExpiredWindows) {
  BatchPolicy policy = manual();
  policy.max_delay_ns = 10 * sim::kMicrosecond;
  Batcher batcher(engine, policy);
  Actor client(0, 0, 1);
  auto f = batcher.enqueue<int>(client, 1, echo_id, 5);
  batcher.poll(client);
  EXPECT_FALSE(f.ready());  // window not expired yet
  client.advance(11 * sim::kMicrosecond);
  batcher.poll(client);
  EXPECT_TRUE(f.ready());
  EXPECT_EQ(f.get(client), 10);
}

TEST_F(BatchTest, ExplicitFlushShipsPartialBundle) {
  Batcher batcher(engine, manual());
  Actor client(0, 0, 1);
  auto f = batcher.enqueue<int>(client, 1, echo_id, 21);
  EXPECT_EQ(batcher.pending_ops(1), 1u);
  batcher.flush(client, 1);
  EXPECT_EQ(batcher.pending_ops(1), 0u);
  EXPECT_EQ(f.get(client), 42);
  batcher.flush(client, 1);  // empty flush is a no-op
  EXPECT_EQ(batcher.flushes(), 1);
}

// ---------------------------------------------------------------------------
// Ordering and fan-out.
// ---------------------------------------------------------------------------

TEST_F(BatchTest, FifoOrderWithinDestination) {
  Batcher batcher(engine, manual());
  Actor client(0, 0, 1);
  std::vector<Future<int>> futures;
  for (int i = 0; i < 16; ++i) {
    futures.push_back(batcher.enqueue<int>(client, 1, echo_id, i));
  }
  batcher.flush_all(client);
  ASSERT_EQ(tape.size(), 16u);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(tape[static_cast<std::size_t>(i)], i);  // server saw FIFO order
    EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(client), i * 2);
  }
}

TEST_F(BatchTest, FifoOrderPreservedAcrossAutoFlushChunks) {
  BatchPolicy policy = manual();
  policy.max_ops = 3;  // 8 ops -> chunks of 3, 3, 2
  Batcher batcher(engine, policy);
  Actor client(0, 0, 1);
  std::vector<Future<int>> futures;
  for (int i = 0; i < 8; ++i) {
    futures.push_back(batcher.enqueue<int>(client, 1, echo_id, i));
  }
  batcher.flush_all(client);
  EXPECT_EQ(batcher.flushes(), 3);
  ASSERT_EQ(tape.size(), 8u);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(tape[static_cast<std::size_t>(i)], i);
  }
}

TEST_F(BatchTest, IndependentQueuesPerDestination) {
  fabric::Fabric wide(Topology(3, 1), CostModel::zero());
  Engine eng(wide);
  std::mutex mutex;
  std::vector<std::pair<sim::NodeId, int>> seen;
  const FuncId record = eng.bind<int, int>(
      [&](ServerCtx& sctx, const int& v) {
        std::lock_guard<std::mutex> guard(mutex);
        seen.emplace_back(sctx.node, v);
        return v;
      });
  Batcher batcher(eng, manual());
  Actor client(0, 0, 1);
  auto f1 = batcher.enqueue<int>(client, 1, record, 10);
  auto f2 = batcher.enqueue<int>(client, 2, record, 20);
  auto f3 = batcher.enqueue<int>(client, 1, record, 11);
  EXPECT_EQ(batcher.pending_ops(1), 2u);
  EXPECT_EQ(batcher.pending_ops(2), 1u);
  batcher.flush(client, 1);  // ships node 1 only
  EXPECT_TRUE(f1.ready());
  EXPECT_TRUE(f3.ready());
  EXPECT_FALSE(f2.ready());
  batcher.flush_all(client);
  EXPECT_EQ(f1.get(client), 10);
  EXPECT_EQ(f2.get(client), 20);
  EXPECT_EQ(f3.get(client), 11);
}

// ---------------------------------------------------------------------------
// Per-op status isolation under mid-batch faults (OpClass::kBatchOp).
// ---------------------------------------------------------------------------

TEST_F(BatchTest, HandlerThrowMidBatchFailsOnlyThatOp) {
  plan->trigger_at(1, OpClass::kBatchOp, 2, FaultKind::kThrow);
  Batcher batcher(engine, manual());
  Actor client(0, 0, 1);
  std::vector<Future<int>> futures;
  for (int i = 0; i < 5; ++i) {
    futures.push_back(batcher.enqueue<int>(client, 1, echo_id, i));
  }
  batcher.flush_all(client);
  for (int i = 0; i < 5; ++i) {
    const Status st = futures[static_cast<std::size_t>(i)].wait(client);
    if (i == 2) {
      EXPECT_EQ(st.code(), StatusCode::kInternal);
      EXPECT_NE(st.message().find("injected"), std::string::npos);
    } else {
      EXPECT_TRUE(st.ok()) << "op " << i << ": " << st.to_string();
      EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(client), i * 2);
    }
  }
  EXPECT_EQ(plan->counters().throws.load(), 1);
}

TEST_F(BatchTest, DropMidBatchSkipsOnlyThatOp) {
  plan->trigger_at(1, OpClass::kBatchOp, 1, FaultKind::kDrop);
  Batcher batcher(engine, manual());
  Actor client(0, 0, 1);
  std::vector<Future<int>> futures;
  for (int i = 0; i < 4; ++i) {
    futures.push_back(batcher.enqueue<int>(client, 1, echo_id, i));
  }
  batcher.flush_all(client);
  for (int i = 0; i < 4; ++i) {
    const Status st = futures[static_cast<std::size_t>(i)].wait(client);
    if (i == 1) {
      EXPECT_EQ(st.code(), StatusCode::kUnavailable);
    } else {
      EXPECT_TRUE(st.ok());
    }
  }
  // The dropped op never executed — no side effects, unlike its siblings.
  ASSERT_EQ(tape.size(), 3u);
  EXPECT_EQ(tape, (std::vector<int>{0, 2, 3}));
}

TEST_F(BatchTest, HclErrorFromBatchedHandlerKeepsItsCode) {
  const FuncId capacity = engine.bind<int, int>(
      [](ServerCtx&, const int&) -> int {
        throw HclError(Status::Capacity("partition full"));
      });
  Batcher batcher(engine, manual());
  Actor client(0, 0, 1);
  auto good = batcher.enqueue<int>(client, 1, echo_id, 1);
  auto bad = batcher.enqueue<int>(client, 1, capacity, 2);
  batcher.flush_all(client);
  EXPECT_TRUE(good.wait(client).ok());
  EXPECT_EQ(bad.wait(client).code(), StatusCode::kCapacity);
}

TEST_F(BatchTest, UnboundHandlerMidBatchIsNotFound) {
  Batcher batcher(engine, manual());
  Actor client(0, 0, 1);
  auto good = batcher.enqueue<int>(client, 1, echo_id, 1);
  auto bad = batcher.enqueue<int>(client, 1, /*unbound=*/424'242, 2);
  batcher.flush_all(client);
  EXPECT_TRUE(good.wait(client).ok());
  EXPECT_EQ(bad.wait(client).code(), StatusCode::kNotFound);
}

TEST_F(BatchTest, DuplicateMidBatchRunsHandlerTwice) {
  plan->trigger_at(1, OpClass::kBatchOp, 0, FaultKind::kDuplicate);
  Batcher batcher(engine, manual());
  Actor client(0, 0, 1);
  auto f0 = batcher.enqueue<int>(client, 1, echo_id, 7);
  auto f1 = batcher.enqueue<int>(client, 1, echo_id, 8);
  batcher.flush_all(client);
  EXPECT_EQ(f0.get(client), 14);  // response still well-formed
  EXPECT_EQ(f1.get(client), 16);
  EXPECT_EQ(tape, (std::vector<int>{7, 7, 8}));  // op 0 executed twice
  EXPECT_EQ(plan->counters().duplicates.load(), 1);
}

TEST_F(BatchTest, SeededBatchFaultMixAlwaysResolvesDefinite) {
  FaultProbabilities p;
  p.drop = 0.05;
  p.throw_handler = 0.05;
  p.unavailable = 0.05;
  p.duplicate = 0.03;
  plan->set(OpClass::kBatchOp, p);
  BatchPolicy policy = manual();
  policy.max_ops = 16;
  Batcher batcher(engine, policy);
  Actor client(0, 0, 1);
  std::vector<Future<int>> futures;
  for (int i = 0; i < 400; ++i) {
    futures.push_back(batcher.enqueue<int>(client, 1, echo_id, i));
  }
  batcher.flush_all(client);
  int ok = 0, failed = 0;
  for (auto& f : futures) {
    const Status st = f.wait(client);
    if (st.ok()) {
      ++ok;
    } else {
      ASSERT_TRUE(st.code() == StatusCode::kInternal ||
                  st.code() == StatusCode::kUnavailable)
          << st.to_string();
      ++failed;
    }
  }
  EXPECT_EQ(ok + failed, 400);
  EXPECT_GT(ok, 300);   // most of the bundle survives
  EXPECT_GT(failed, 0); // but faults really fired, each poisoning one slot
  EXPECT_GT(plan->counters().total(), 0);
}

// ---------------------------------------------------------------------------
// Whole-bundle transport faults go through the retry policy.
// ---------------------------------------------------------------------------

TEST_F(BatchTest, BundleDropFailsEveryConstituentDefinitely) {
  plan->trigger_at(1, OpClass::kRpc, 0, FaultKind::kDrop);
  Batcher batcher(engine, manual());  // default options: no retries
  Actor client(0, 0, 1);
  auto f0 = batcher.enqueue<int>(client, 1, echo_id, 1);
  auto f1 = batcher.enqueue<int>(client, 1, echo_id, 2);
  batcher.flush_all(client);
  EXPECT_EQ(f0.wait(client).code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(f1.wait(client).code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(tape.empty());  // the bundle never arrived
}

TEST_F(BatchTest, BundleDropIsAbsorbedByRetryPolicy) {
  plan->trigger_at(1, OpClass::kRpc, 0, FaultKind::kDrop);
  InvokeOptions opts;
  opts.max_retries = 2;
  Batcher batcher(engine, manual(), opts);
  Actor client(0, 0, 1);
  auto f0 = batcher.enqueue<int>(client, 1, echo_id, 1);
  auto f1 = batcher.enqueue<int>(client, 1, echo_id, 2);
  batcher.flush_all(client);
  EXPECT_EQ(f0.get(client), 2);
  EXPECT_EQ(f1.get(client), 4);
  EXPECT_GE(fabric.nic(1).counters().rpc_retries.load(), 1);
}

// ---------------------------------------------------------------------------
// Dangling-future guards on batched invokes.
// ---------------------------------------------------------------------------

TEST_F(BatchTest, DestroyedBatcherResolvesPendingFutures) {
  Actor client(0, 0, 1);
  Future<int> orphan;
  {
    Batcher batcher(engine, manual());
    orphan = batcher.enqueue<int>(client, 1, echo_id, 9);
    EXPECT_FALSE(orphan.ready());
  }  // never flushed
  EXPECT_TRUE(orphan.ready());  // resolved, not hung
  const Status st = orphan.wait(client);
  EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition);
  EXPECT_THROW((void)orphan.get(client), HclError);
  EXPECT_TRUE(tape.empty());  // the op never ran
}

TEST_F(BatchTest, MovedFromBatchedFutureFailsLoudly) {
  Batcher batcher(engine, manual());
  Actor client(0, 0, 1);
  auto f = batcher.enqueue<int>(client, 1, echo_id, 1);
  batcher.flush_all(client);
  Future<int> taken = std::move(f);
  EXPECT_EQ(taken.get(client), 2);
  // NOLINTNEXTLINE(bugprone-use-after-move): the guard is the test.
  EXPECT_THROW((void)f.get(client), HclError);
}

// ---------------------------------------------------------------------------
// Cost accounting: one wire crossing, one pull, amortized dispatch.
// ---------------------------------------------------------------------------

struct BatchCostTest : ::testing::Test {
  BatchCostTest() : fabric(Topology(2, 2), CostModel::ares()), engine(fabric) {
    echo_id = engine.bind<int, int>([](ServerCtx& sctx, const int& v) {
      sctx.finish = sctx.start;  // no structure cost; isolate RoR overheads
      return v;
    });
  }
  fabric::Fabric fabric;
  Engine engine;
  FuncId echo_id = 0;
};

TEST_F(BatchCostTest, OneBundleIsOneWireInvocation) {
  BatchPolicy policy;
  policy.max_ops = 64;
  policy.max_delay_ns = 0;
  Batcher batcher(engine, policy);
  Actor client(0, 0, 1);
  std::vector<Future<int>> futures;
  for (int i = 0; i < 32; ++i) {
    futures.push_back(batcher.enqueue<int>(client, 1, echo_id, i));
  }
  batcher.flush_all(client);
  for (auto& f : futures) (void)f.get(client);
  auto& counters = fabric.nic(1).counters();
  EXPECT_EQ(counters.rpc_count.load(), 1);    // Table I: one F for the bundle
  EXPECT_EQ(counters.rpc_batches.load(), 1);
  EXPECT_EQ(counters.rpc_batched_ops.load(), 32);
}

TEST_F(BatchCostTest, AwaitingSiblingsChargesOnePull) {
  BatchPolicy policy;
  policy.max_ops = 64;
  policy.max_delay_ns = 0;
  Batcher batcher(engine, policy);
  Actor client(0, 0, 1);
  std::vector<Future<int>> futures;
  for (int i = 0; i < 8; ++i) {
    futures.push_back(batcher.enqueue<int>(client, 1, echo_id, i));
  }
  batcher.flush_all(client);
  (void)futures[0].get(client);
  const Nanos after_first = client.now();
  for (int i = 1; i < 8; ++i) (void)futures[static_cast<std::size_t>(i)].get(client);
  // Siblings share the packed response: later awaits advance to the pull's
  // completion but never re-pay wire overhead.
  EXPECT_EQ(client.now(), after_first);
}

TEST_F(BatchCostTest, CoalescingAmortizesPerOpOverhead) {
  constexpr int kOps = 32;
  Actor batched_client(0, 0, 1);
  BatchPolicy policy;
  policy.max_ops = kOps;
  policy.max_delay_ns = 0;
  Batcher batcher(engine, policy);
  std::vector<Future<int>> futures;
  for (int i = 0; i < kOps; ++i) {
    futures.push_back(batcher.enqueue<int>(batched_client, 1, echo_id, i));
  }
  batcher.flush_all(batched_client);
  for (auto& f : futures) (void)f.get(batched_client);
  const Nanos batched = batched_client.now();

  Actor scalar_client(1, 0, 2);
  for (int i = 0; i < kOps; ++i) {
    (void)engine.invoke<int>(scalar_client, 1, echo_id, i);
  }
  const Nanos scalar = scalar_client.now();
  // One round trip + per-op sub-dispatch vs kOps full round trips.
  EXPECT_LT(batched * 2, scalar);
}

TEST_F(BatchCostTest, SingleOpBundleDegeneratesToScalarInvoke) {
  BatchPolicy policy;
  policy.max_ops = 64;
  policy.max_delay_ns = 0;
  Batcher batcher(engine, policy);
  Actor client(0, 0, 1);
  auto f = batcher.enqueue<int>(client, 1, echo_id, 21);
  batcher.flush_all(client);
  EXPECT_EQ(f.get(client), 21);
  auto& counters = fabric.nic(1).counters();
  EXPECT_EQ(counters.rpc_count.load(), 1);
  EXPECT_EQ(counters.rpc_batches.load(), 0);  // no bundle framing
  EXPECT_EQ(counters.rpc_batched_ops.load(), 0);
}

}  // namespace
}  // namespace hcl::rpc
