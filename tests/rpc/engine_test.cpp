#include "rpc/engine.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <vector>

namespace hcl::rpc {
namespace {

using sim::Actor;
using sim::CostModel;
using sim::Nanos;
using sim::Topology;

struct RpcTest : ::testing::Test {
  RpcTest() : fabric(Topology(2, 2), CostModel::ares()), engine(fabric) {}
  fabric::Fabric fabric;
  Engine engine;
};

TEST_F(RpcTest, SyncInvokeReturnsValue) {
  const FuncId add = engine.bind<int, int, int>(
      [](ServerCtx&, const int& a, const int& b) { return a + b; });
  Actor client(0, 0, 1);
  EXPECT_EQ((engine.invoke<int>(client, 1, add, 2, 3)), 5);
  EXPECT_GT(client.now(), 0);
}

TEST_F(RpcTest, StringArgsAndResult) {
  const FuncId concat = engine.bind<std::string, std::string, std::string>(
      [](ServerCtx&, const std::string& a, const std::string& b) {
        return a + b;
      });
  Actor client(0, 0, 1);
  EXPECT_EQ((engine.invoke<std::string>(client, 1, concat, std::string("foo"),
                                        std::string("bar"))),
            "foobar");
}

TEST_F(RpcTest, VoidResult) {
  std::atomic<int> hits{0};
  const FuncId poke =
      engine.bind<void, int>([&](ServerCtx&, const int& v) { hits += v; });
  Actor client(0, 0, 1);
  engine.invoke<void>(client, 1, poke, 5);
  EXPECT_EQ(hits.load(), 5);
}

TEST_F(RpcTest, HandlerRunsOnTargetContext) {
  const FuncId where =
      engine.bind<int>([](ServerCtx& ctx) { return static_cast<int>(ctx.node); });
  Actor client(0, 0, 1);
  EXPECT_EQ((engine.invoke<int>(client, 1, where)), 1);
  EXPECT_EQ((engine.invoke<int>(client, 0, where)), 0);
}

TEST_F(RpcTest, AsyncInvokeOverlapsAndResolves) {
  const FuncId echo =
      engine.bind<int, int>([](ServerCtx&, const int& v) { return v; });
  Actor client(0, 0, 1);
  std::vector<Future<int>> futures;
  futures.reserve(16);
  for (int i = 0; i < 16; ++i) {
    futures.push_back(engine.async_invoke<int>(client, 1, echo, i));
  }
  for (int i = 0; i < 16; ++i) EXPECT_EQ(futures[i].get(client), i);
}

TEST_F(RpcTest, AsyncChargesLessThanSyncPerCall) {
  const FuncId echo =
      engine.bind<int, int>([](ServerCtx&, const int& v) { return v; });
  Actor sync_client(0, 0, 1), async_client(1, 0, 2);
  constexpr int kOps = 32;
  for (int i = 0; i < kOps; ++i) (void)engine.invoke<int>(sync_client, 1, echo, i);
  // Fresh simulated lanes so the async client does not queue behind the
  // sync client's reservations.
  fabric.reset_metrics();
  std::vector<Future<int>> fs;
  for (int i = 0; i < kOps; ++i) fs.push_back(engine.async_invoke<int>(async_client, 1, echo, i));
  for (auto& f : fs) (void)f.get(async_client);
  // Pipelined async issue must beat strictly serial round trips.
  EXPECT_LT(async_client.now(), sync_client.now());
}

TEST_F(RpcTest, FutureReadyAndThen) {
  const FuncId echo =
      engine.bind<int, int>([](ServerCtx&, const int& v) { return v; });
  Actor client(0, 0, 1);
  std::atomic<bool> fired{false};
  auto f = engine.async_invoke<int>(client, 1, echo, 9);
  f.then([&] { fired.store(true); });
  EXPECT_EQ(f.get(client), 9);
  EXPECT_TRUE(fired.load());
  EXPECT_TRUE(f.ready());
}

TEST_F(RpcTest, UnknownFuncIdFails) {
  Actor client(0, 0, 1);
  auto f = engine.async_invoke<int>(client, 1, /*id=*/999'999, 1);
  EXPECT_EQ(f.wait(client).code(), StatusCode::kNotFound);
}

TEST_F(RpcTest, UnbindMakesIdUnknown) {
  const FuncId echo =
      engine.bind<int, int>([](ServerCtx&, const int& v) { return v; });
  engine.unbind(echo);
  Actor client(0, 0, 1);
  auto f = engine.async_invoke<int>(client, 1, echo, 1);
  EXPECT_EQ(f.wait(client).code(), StatusCode::kNotFound);
}

TEST_F(RpcTest, HandlerErrorPropagatesAsStatus) {
  const FuncId boom = engine.bind<int>([](ServerCtx&) -> int {
    throw HclError(Status::Capacity("partition full"));
  });
  Actor client(0, 0, 1);
  auto f = engine.async_invoke<int>(client, 1, boom);
  EXPECT_EQ(f.wait(client).code(), StatusCode::kCapacity);
  auto g = engine.async_invoke<int>(client, 1, boom);
  EXPECT_THROW(g.get(client), HclError);
}

TEST_F(RpcTest, ServerSideCallbackChain) {
  // Stage 1 produces a value; each chained stage consumes the previous
  // serialized result (the paper's "multiple operations in one call").
  const FuncId produce =
      engine.bind<int, int>([](ServerCtx&, const int& v) { return v * 2; });
  const FuncId add_ten = engine.bind_raw(
      [](ServerCtx&, std::span<const std::byte> prev) -> std::vector<std::byte> {
        serial::InArchive in(prev);
        int v;
        serial::load(in, v);
        serial::OutArchive out;
        serial::save(out, v + 10);
        return out.take();
      });
  Actor client(0, 0, 1);
  EXPECT_EQ((engine.invoke_chain<int>(client, 1, produce, {add_ten, add_ten}, 5)),
            5 * 2 + 10 + 10);
}

TEST_F(RpcTest, ChainCostsOneWireCrossing) {
  const FuncId produce =
      engine.bind<int, int>([](ServerCtx&, const int& v) { return v; });
  const FuncId identity = engine.bind_raw(
      [](ServerCtx&, std::span<const std::byte> prev) {
        return std::vector<std::byte>(prev.begin(), prev.end());
      });
  Actor client(0, 0, 1);
  (void)engine.invoke_chain<int>(client, 1, produce, {identity, identity, identity}, 1);
  // One RPC send despite four server-side stages.
  EXPECT_EQ(fabric.nic(1).counters().rpc_count.load(), 1);
}

TEST_F(RpcTest, HandlerChargesSimTime) {
  const FuncId slow = engine.bind<int>([](ServerCtx& ctx) {
    ctx.finish = ctx.fabric->local_write(ctx.node, ctx.start, 1 << 20);
    return 1;
  });
  Actor client(0, 0, 1);
  (void)engine.invoke<int>(client, 1, slow);
  const auto& m = fabric.model();
  EXPECT_GE(client.now(), m.mem_write_time(1 << 20));
}

TEST_F(RpcTest, ServerInvokeFiresWithoutClientCost) {
  std::atomic<int> replicas{0};
  const FuncId replicate =
      engine.bind<void, int>([&](ServerCtx&, const int&) { replicas.fetch_add(1); });
  // Handler on node 1 re-invokes onto node 0 (asynchronous replication).
  const FuncId primary = engine.bind<int, int>(
      [&, replicate](ServerCtx& ctx, const int& v) {
        engine.server_invoke(ctx.node, 0, ctx.finish, replicate, v);
        return v;
      });
  Actor client(0, 0, 1);
  EXPECT_EQ((engine.invoke<int>(client, 1, primary, 3)), 3);
  fabric.drain_all();
  EXPECT_EQ(replicas.load(), 1);
}

TEST_F(RpcTest, ConcurrentClientsAllSucceed) {
  std::atomic<long> total{0};
  const FuncId acc = engine.bind<long, int>([&](ServerCtx&, const int& v) {
    return total.fetch_add(v) + v;
  });
  constexpr int kClients = 8;
  constexpr int kOps = 200;
  std::vector<std::thread> pool;
  std::vector<std::unique_ptr<Actor>> actors;
  for (int c = 0; c < kClients; ++c) actors.push_back(std::make_unique<Actor>(c, 0, c));
  for (auto& a : actors) {
    pool.emplace_back([&, ap = a.get()] {
      for (int i = 0; i < kOps; ++i) (void)engine.invoke<long>(*ap, 1, acc, 1);
    });
  }
  for (auto& t : pool) t.join();
  EXPECT_EQ(total.load(), kClients * kOps);
}

TEST_F(RpcTest, TotalInvocationsCounted) {
  const FuncId echo = engine.bind<int, int>([](ServerCtx&, const int& v) { return v; });
  Actor client(0, 0, 1);
  const auto before = engine.total_invocations();
  for (int i = 0; i < 5; ++i) (void)engine.invoke<int>(client, 1, echo, i);
  EXPECT_EQ(engine.total_invocations() - before, 5);
}

}  // namespace
}  // namespace hcl::rpc
