#!/usr/bin/env python3
"""Docs CI gate (stdlib only).

1. Link check: every relative markdown link in the repo's *.md files must
   resolve to an existing file (anchors are stripped; http(s) links are
   not fetched).
2. Operator-reference completeness: every HCL_* environment variable read
   in src/ (via getenv or read_env_int) must appear in README.md's
   operator table, and every HCL_* row in that table must still be read
   somewhere in src/ — so the table can neither rot nor invent knobs.
3. Bench handbook coverage: every bench/fig*.cpp figure binary and every
   BENCH_*.json artifact a bench emits must be mentioned in
   EXPERIMENTS.md — a new figure or JSON record cannot land undocumented.
4. Bench flag completeness: every --flag parsed by a bench binary (via
   Args::get/has in bench/) must appear in README.md's bench flag
   reference table, and every --flag row in that table must still be
   parsed somewhere in bench/ — same no-rot/no-invention contract as
   the env table.

Exit code 0 = green; nonzero prints each violation on its own line.
"""

import os
import re
import sys

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# Internal docs not shipped as operator-facing documentation.
SKIP_DOCS = {"ISSUE.md", "SNIPPETS.md", "PAPERS.md", "PAPER.md"}

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
ENV_READ_RE = re.compile(
    r'(?:getenv|read_env_int)\s*\(\s*"(HCL_[A-Z0-9_]+)"')
TABLE_ENV_RE = re.compile(r"^\|\s*`(HCL_[A-Z0-9_]+)`", re.MULTILINE)
JSON_ARTIFACT_RE = re.compile(r'"(BENCH_[A-Z0-9_]+\.json)"')
BENCH_FLAG_RE = re.compile(r'"(--[a-z][a-z0-9-]*)"')
TABLE_FLAG_RE = re.compile(r"^\|\s*`(--[a-z][a-z0-9-]*)`", re.MULTILINE)


def markdown_files():
    for name in sorted(os.listdir(ROOT)):
        if name.endswith(".md") and name not in SKIP_DOCS:
            yield name


def check_links(errors):
    for name in markdown_files():
        text = open(os.path.join(ROOT, name), encoding="utf-8").read()
        for match in LINK_RE.finditer(text):
            target = match.group(1)
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            path = target.split("#", 1)[0]
            if not path:  # pure in-page anchor
                continue
            if not os.path.exists(os.path.join(ROOT, path)):
                errors.append(f"{name}: broken link -> {target}")


def env_vars_in_src():
    found = set()
    for dirpath, _, filenames in os.walk(os.path.join(ROOT, "src")):
        for filename in filenames:
            if not filename.endswith((".h", ".cpp", ".cc")):
                continue
            text = open(os.path.join(dirpath, filename), encoding="utf-8").read()
            found.update(ENV_READ_RE.findall(text))
    return found


def env_vars_in_readme():
    text = open(os.path.join(ROOT, "README.md"), encoding="utf-8").read()
    return set(TABLE_ENV_RE.findall(text))


def check_env_table(errors):
    in_src = env_vars_in_src()
    in_readme = env_vars_in_readme()
    for var in sorted(in_src - in_readme):
        errors.append(
            f"README.md: operator table is missing {var} (read in src/)")
    for var in sorted(in_readme - in_src):
        errors.append(
            f"README.md: operator table lists {var}, but nothing in src/ reads it")


def bench_sources():
    bench_dir = os.path.join(ROOT, "bench")
    for name in sorted(os.listdir(bench_dir)):
        if name.endswith((".cpp", ".h")):
            yield name, open(os.path.join(bench_dir, name),
                             encoding="utf-8").read()


def check_bench_handbook(errors):
    experiments = open(os.path.join(ROOT, "EXPERIMENTS.md"),
                       encoding="utf-8").read()
    for name, text in bench_sources():
        if name.startswith("fig") and name.endswith(".cpp"):
            stem = name[:-len(".cpp")]
            if stem not in experiments:
                errors.append(
                    f"EXPERIMENTS.md: bench/{name} is never mentioned "
                    f"(new figure binary without handbook coverage)")
        for artifact in set(JSON_ARTIFACT_RE.findall(text)):
            if artifact not in experiments:
                errors.append(
                    f"EXPERIMENTS.md: {artifact} (emitted by bench/{name}) "
                    f"is never mentioned")


def check_bench_flag_table(errors):
    in_bench = set()
    for _, text in bench_sources():
        in_bench.update(BENCH_FLAG_RE.findall(text))
    readme = open(os.path.join(ROOT, "README.md"), encoding="utf-8").read()
    in_readme = set(TABLE_FLAG_RE.findall(readme))
    for flag in sorted(in_bench - in_readme):
        errors.append(
            f"README.md: bench flag table is missing {flag} (parsed in bench/)")
    for flag in sorted(in_readme - in_bench):
        errors.append(
            f"README.md: bench flag table lists {flag}, "
            f"but nothing in bench/ parses it")


def main():
    errors = []
    check_links(errors)
    check_env_table(errors)
    check_bench_handbook(errors)
    check_bench_flag_table(errors)
    for error in errors:
        print(error)
    if errors:
        print(f"{len(errors)} docs violation(s)")
        return 1
    print("docs ok: links resolve, operator table matches src/, "
          "bench handbook and flag table match bench/")
    return 0


if __name__ == "__main__":
    sys.exit(main())
