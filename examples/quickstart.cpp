// Quickstart: the paper's Fig. 3 flow — create a Context, construct
// distributed containers by calling their constructors, and use them from
// every rank as if they were local STL containers.
//
//   ./quickstart [nodes] [procs_per_node]
#include <cstdio>
#include <string>

#include "core/hcl.h"

int main(int argc, char** argv) {
  const int nodes = argc > 1 ? std::atoi(argv[1]) : 4;
  const int procs = argc > 2 ? std::atoi(argv[2]) : 8;

  // The runtime: a simulated cluster (see DESIGN.md §2 — on a real
  // deployment this would be your MPI/PGAS job).
  hcl::Context ctx({.num_nodes = nodes, .procs_per_node = procs});

  // A distributed hash map, partitioned over every node.
  hcl::unordered_map<int, std::string> directory(ctx);

  // A distributed FIFO work queue hosted on node 0.
  hcl::queue<int> work(ctx);

  // SPMD section: every rank runs this function (like MPI ranks).
  ctx.run([&](hcl::sim::Actor& self) {
    // Publish an entry; the key hashes to some partition — maybe local
    // (direct shared memory), maybe remote (one RPC-over-RDMA invocation).
    directory.insert(self.rank(), "hello from rank " + std::to_string(self.rank()));

    // Enqueue work for anyone to pick up.
    work.push(self.rank() * 100);

    // Read a neighbour's entry — location-transparent.
    const int neighbour = (self.rank() + 1) % ctx.topology().num_ranks();
    std::string value;
    if (directory.find(neighbour, &value)) {
      if (self.rank() == 0) {
        std::printf("[rank %d] read \"%s\"\n", self.rank(), value.c_str());
      }
    }

    // Drain one item of work.
    int item;
    if (work.pop(&item)) {
      if (self.rank() == 0) std::printf("[rank %d] popped %d\n", self.rank(), item);
    }
  });

  std::printf("directory holds %zu entries across %d partitions\n",
              directory.size(), directory.num_partitions());
  std::printf("simulated makespan: %.3f ms\n", ctx.elapsed_seconds() * 1e3);
  std::printf("ok\n");
  return 0;
}
