// Indexing service: a distributed inverted index with persistence — the
// "indexing services" use case from the paper's introduction (§I), plus the
// DataBox persistency feature (§III.C.6).
//
// Every rank ingests documents; the index maps each term to its posting
// list. Updates go through a registered mutator (one invocation per
// posting, no client-side read-modify-write), and every partition journals
// through a real memory-mapped file, so the index survives a restart.
//
//   ./indexing_service [docs_per_rank]
#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/hcl.h"

namespace {

/// A posting list: document ids that contain the term.
using Postings = std::vector<std::uint64_t>;

std::vector<std::string> tokenize(const std::string& text) {
  std::vector<std::string> words;
  std::istringstream stream(text);
  std::string w;
  while (stream >> w) words.push_back(w);
  return words;
}

/// Tiny deterministic document generator over a fixed vocabulary.
std::string make_document(hcl::Rng& rng) {
  static const char* kVocabulary[] = {
      "fabric", "rdma",  "rpc",   "queue", "hashmap", "cluster",
      "node",   "nic",   "core",  "pgas",  "memory",  "latency",
      "verbs",  "kernel", "genome", "sort",
  };
  std::string doc;
  const int words = 6 + static_cast<int>(rng.next_below(10));
  for (int w = 0; w < words; ++w) {
    doc += kVocabulary[rng.next_below(std::size(kVocabulary))];
    doc += ' ';
  }
  return doc;
}

}  // namespace

int main(int argc, char** argv) {
  const int docs_per_rank = argc > 1 ? std::atoi(argv[1]) : 64;
  const std::string store =
      (std::filesystem::temp_directory_path() / "hcl_index").string();
  for (int p = 0; p < 8; ++p) {
    std::filesystem::remove(store + ".p" + std::to_string(p));
  }

  std::size_t indexed_terms = 0;

  // ---- Phase 1: build the index, then "crash" ---------------------------
  {
    hcl::Context ctx({.num_nodes = 4, .procs_per_node = 4});
    hcl::core::ContainerOptions options;
    options.persist_path = store;  // journal through mmap'd files
    hcl::unordered_map<std::string, Postings> index(ctx, options);

    // One invocation appends a document id to a term's posting list —
    // the procedural-paradigm primitive (registered mutator).
    const auto append = index.register_mutator<std::uint64_t>(
        [](Postings& postings, const std::uint64_t& doc) {
          postings.push_back(doc);
        });

    ctx.run([&](hcl::sim::Actor& self) {
      hcl::Rng rng(static_cast<std::uint64_t>(self.rank()) + 99);
      for (int d = 0; d < docs_per_rank; ++d) {
        const auto doc_id =
            static_cast<std::uint64_t>(self.rank()) * docs_per_rank + d;
        for (const auto& term : tokenize(make_document(rng))) {
          index.apply(term, append, doc_id, Postings{});
        }
      }
    });
    indexed_terms = index.size();
    std::printf("indexed %d docs/rank across 16 ranks -> %zu terms, %.3f ms simulated\n",
                docs_per_rank, indexed_terms, ctx.elapsed_seconds() * 1e3);
  }  // index and context destroyed here — simulated crash

  // ---- Phase 2: recover from the journals and query ----------------------
  {
    hcl::Context ctx({.num_nodes = 4, .procs_per_node = 4});
    hcl::core::ContainerOptions options;
    options.persist_path = store;
    hcl::unordered_map<std::string, Postings> index(ctx, options);
    std::printf("recovered %zu terms from the memory-mapped journals (expected %zu)\n",
                index.size(), indexed_terms);

    ctx.run_one(0, [&](hcl::sim::Actor&) {
      for (const char* term : {"rdma", "genome", "latency"}) {
        Postings postings;
        if (index.find(term, &postings)) {
          std::printf("  \"%s\" -> %zu postings (first doc %" PRIu64 ")\n", term,
                      postings.size(), postings.empty() ? 0 : postings.front());
        }
      }
    });
  }

  for (int p = 0; p < 8; ++p) {
    std::filesystem::remove(store + ".p" + std::to_string(p));
  }
  std::printf("ok\n");
  return 0;
}
