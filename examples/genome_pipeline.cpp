// Genome assembly pipeline: the full Meraculous-style flow of Fig. 7(b/c)
// driven through the public API — generate reads, count k-mers, build the
// de Bruijn graph, and walk contigs, comparing HCL against the BCL baseline.
//
//   ./genome_pipeline [reference_bases] [k]
#include <cinttypes>
#include <cstdio>

#include "apps/genome.h"
#include "apps/meraculous.h"

int main(int argc, char** argv) {
  using namespace hcl::apps;  // NOLINT

  GenomeConfig gcfg;
  gcfg.reference_length = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 20'000;
  gcfg.k = argc > 2 ? std::atoi(argv[2]) : 21;
  gcfg.read_length = 100;
  gcfg.coverage = 4.0;

  std::printf("generating synthetic genome: %zu bases, %.0fx coverage, k=%d\n",
              gcfg.reference_length, gcfg.coverage, gcfg.k);
  auto genome = generate_genome(gcfg);
  std::printf("  %zu reads of %zu bases\n", genome.reads.size(),
              gcfg.read_length);

  hcl::Context ctx({.num_nodes = 4, .procs_per_node = 4});

  // ---- stage 1: k-mer spectrum -------------------------------------------
  auto hcl_counts = run_kmer_count_hcl(ctx, genome);
  auto bcl_counts = run_kmer_count_bcl(ctx, genome);
  std::printf("\nk-mer counting: %" PRIu64 " occurrences, %" PRIu64 " distinct\n",
              hcl_counts.total_kmers, hcl_counts.distinct_kmers);
  std::printf("  HCL %.3f s   BCL %.3f s   speedup %.2fx\n", hcl_counts.seconds,
              bcl_counts.seconds, bcl_counts.seconds / hcl_counts.seconds);

  // ---- stage 2: contig generation ----------------------------------------
  auto hcl_contigs = run_contig_hcl(ctx, genome);
  auto bcl_contigs = run_contig_bcl(ctx, genome);
  std::printf("\ncontig generation: %" PRIu64 " contigs, %" PRIu64 " bases\n",
              hcl_contigs.contigs, hcl_contigs.total_bases);
  std::printf("  HCL %.3f s   BCL %.3f s   speedup %.2fx\n", hcl_contigs.seconds,
              bcl_contigs.seconds, bcl_contigs.seconds / hcl_contigs.seconds);

  // Sanity: assembled bases should be in the ballpark of the reference.
  const double ratio = static_cast<double>(hcl_contigs.total_bases) /
                       static_cast<double>(gcfg.reference_length);
  std::printf("\nassembled/reference base ratio: %.2f\n", ratio);
  std::printf("ok\n");
  return 0;
}
