// Distributed task scheduler: the "scheduling" and "process-to-process
// lock-free synchronization" use case from the paper's introduction (§I).
//
// A priority queue holds ready tasks ordered by deadline; an unordered map
// tracks task state; replication keeps a warm copy of the state on a
// neighbour partition (§III.A.4). Half the ranks produce tasks, half
// consume, with work-stealing semantics falling out of the MWMR queue.
//
//   ./task_scheduler [tasks_per_producer]
#include <cinttypes>
#include <cstdio>
#include <string>

#include "common/rng.h"
#include "core/hcl.h"

namespace {

struct Task {
  std::uint64_t deadline = 0;  // priority: earliest deadline first
  std::uint64_t id = 0;
  std::uint32_t kind = 0;

  friend bool operator<(const Task& a, const Task& b) {
    return a.deadline < b.deadline;
  }
  friend bool operator==(const Task&, const Task&) = default;
};
static_assert(hcl::serial::is_fixed_wire_size_v<Task>);  // byte-copyable wire

enum class TaskState : std::uint8_t { kPending = 0, kRunning = 1, kDone = 2 };

}  // namespace

int main(int argc, char** argv) {
  const int tasks_per_producer = argc > 1 ? std::atoi(argv[1]) : 128;

  hcl::Context ctx({.num_nodes = 4, .procs_per_node = 4});

  // Ready queue: earliest-deadline-first across the whole cluster.
  hcl::priority_queue<Task> ready(ctx);

  // Task state, replicated once for warm failover.
  hcl::core::ContainerOptions state_options;
  state_options.replication = 1;
  hcl::unordered_map<std::uint64_t, std::uint32_t> state(ctx, state_options);

  std::atomic<std::uint64_t> executed{0};
  std::atomic<std::uint64_t> in_order_violations{0};

  ctx.run([&](hcl::sim::Actor& self) {
    const bool producer = self.rank() % 2 == 0;
    hcl::Rng rng(static_cast<std::uint64_t>(self.rank()) * 31 + 7);
    if (producer) {
      for (int t = 0; t < tasks_per_producer; ++t) {
        Task task;
        task.id = static_cast<std::uint64_t>(self.rank()) * tasks_per_producer + t;
        task.deadline = rng.next_below(1'000'000);
        task.kind = static_cast<std::uint32_t>(rng.next_below(4));
        state.insert(task.id, static_cast<std::uint32_t>(TaskState::kPending));
        ready.push(task);  // one invocation, ordered on arrival
      }
    } else {
      // Consumers drain until the queue stays empty; each pop returns the
      // globally earliest deadline among remaining tasks.
      std::uint64_t last_deadline = 0;
      int dry = 0;
      Task task;
      while (dry < 3) {
        if (!ready.pop(&task)) {
          ++dry;
          continue;
        }
        dry = 0;
        // Deadlines from a shared priority queue arrive mostly ascending;
        // races with in-flight producers can reorder slightly.
        if (task.deadline + 1'000 < last_deadline) {
          in_order_violations.fetch_add(1);
        }
        last_deadline = std::max(last_deadline, task.deadline);
        state.upsert(task.id, static_cast<std::uint32_t>(TaskState::kDone));
        executed.fetch_add(1);
      }
    }
  });

  // Finish any leftovers (producers that outpaced consumers).
  ctx.run_one(1, [&](hcl::sim::Actor&) {
    Task task;
    while (ready.pop(&task)) {
      state.upsert(task.id, static_cast<std::uint32_t>(TaskState::kDone));
      executed.fetch_add(1);
    }
  });

  const std::uint64_t produced =
      static_cast<std::uint64_t>(ctx.topology().num_ranks() / 2) *
      tasks_per_producer;
  std::uint64_t done = 0;
  state.for_each([&](const std::uint64_t&, const std::uint32_t& s) {
    if (s == static_cast<std::uint32_t>(TaskState::kDone)) ++done;
  });
  std::size_t replicas = 0;
  for (int p = 0; p < state.num_partitions(); ++p) {
    replicas += state.replica_size(p);
  }

  std::printf("produced %" PRIu64 " tasks, executed %" PRIu64
              ", state says done=%" PRIu64 "\n",
              produced, executed.load(), done);
  std::printf("replicated state entries: %zu (replication factor 1)\n", replicas);
  std::printf("deadline inversions from racing in-flight producers (expected): %" PRIu64 "\n",
              in_order_violations.load());
  std::printf("simulated makespan: %.3f ms\n", ctx.elapsed_seconds() * 1e3);
  std::printf(executed.load() == produced ? "ok\n" : "MISMATCH\n");
  return executed.load() == produced ? 0 : 1;
}
