// Shared benchmark utilities: flag parsing, table output, the Blob payload.
//
// Every bench binary prints the rows/series of the paper figure it
// regenerates, using simulated time (see DESIGN.md §2). Default parameters
// are scaled down from the paper's testbed so the full suite runs in
// minutes; pass --full for paper-scale runs, or individual flags to
// override.
#pragma once

#include <chrono>
#include <cinttypes>
#include <cstdarg>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/hcl.h"
#include "fabric/fabric.h"
#include "sim/cluster.h"

namespace hcl::bench {

/// Minimal command-line flags: --name=value or --name value; --full.
class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) args_.emplace_back(argv[i]);
  }

  [[nodiscard]] bool has(const std::string& name) const {
    for (const auto& a : args_) {
      if (a == name || a.rfind(name + "=", 0) == 0) return true;
    }
    return false;
  }

  [[nodiscard]] std::int64_t get(const std::string& name,
                                 std::int64_t fallback) const {
    for (std::size_t i = 0; i < args_.size(); ++i) {
      if (args_[i].rfind(name + "=", 0) == 0) {
        return std::atoll(args_[i].c_str() + name.size() + 1);
      }
      if (args_[i] == name && i + 1 < args_.size()) {
        return std::atoll(args_[i + 1].c_str());
      }
    }
    return fallback;
  }

  [[nodiscard]] bool full() const { return has("--full"); }

 private:
  std::vector<std::string> args_;
};

/// A payload whose *wire size* is `nominal` bytes but whose in-memory
/// footprint is 16 bytes — lets bandwidth sweeps charge multi-megabyte
/// transfers without materializing gigabytes of real data. The serializer
/// genuinely moves `nominal` bytes through the archive, so serialization
/// cost is real; only long-term storage is elided.
struct Blob {
  std::uint64_t nominal = 0;

  template <typename Ar>
  void serialize(Ar& ar) {
    if constexpr (Ar::is_saving) {
      ar.u64(nominal);
      static const std::vector<std::byte> zeros(1 << 16);
      std::uint64_t left = nominal;
      while (left > 0) {
        const std::uint64_t chunk = left < zeros.size() ? left : zeros.size();
        ar.raw_bytes(zeros.data(), chunk);
        left -= chunk;
      }
    } else {
      nominal = ar.u64();
      std::byte sink[1 << 12];
      std::uint64_t left = nominal;
      while (left > 0) {
        const std::uint64_t chunk = left < sizeof(sink) ? left : sizeof(sink);
        ar.raw_bytes(sink, chunk);
        left -= chunk;
      }
    }
  }

  friend bool operator==(const Blob& a, const Blob& b) {
    return a.nominal == b.nominal;
  }
};

inline std::string human_bytes(std::int64_t bytes) {
  char buf[32];
  if (bytes >= (1 << 20)) {
    std::snprintf(buf, sizeof(buf), "%" PRId64 "MB", bytes >> 20);
  } else {
    std::snprintf(buf, sizeof(buf), "%" PRId64 "KB", bytes >> 10);
  }
  return buf;
}

/// Machine-checkable perf record: one flat JSON object per BENCH_*.json
/// file, deterministic under the rounding contract documented at the top of
/// bench/ablations.cpp (floats rounded coarser than the ns-level reservation
/// noise floor, fixed field order, Config-default seeds).
inline void write_json(const char* path, const std::string& body) {
  if (std::FILE* f = std::fopen(path, "w")) {
    std::fputs(body.c_str(), f);
    std::fputs("\n", f);
    std::fclose(f);
    std::printf("   wrote %s\n", path);
  } else {
    std::fprintf(stderr, "   could not write %s\n", path);
  }
}

inline std::string jsonf(const char* fmt, ...) {
  char buf[2048];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  return buf;
}

/// Real wall-clock budget guard (--budget-s): the paper-scale harness must
/// provably not melt, so CI runs the figure benches under a hard budget and
/// the bench exits non-zero the moment a checkpoint exceeds it.
class WallBudget {
 public:
  explicit WallBudget(double budget_seconds)
      : budget_s_(budget_seconds),
        start_(std::chrono::steady_clock::now()) {}

  [[nodiscard]] double elapsed_s() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

  /// Call at phase boundaries; no-op when no budget was requested.
  void check(const char* tag) const {
    if (budget_s_ <= 0) return;
    const double e = elapsed_s();
    if (e > budget_s_) {
      std::fprintf(stderr,
                   "BUDGET EXCEEDED at %s: %.1f s wall > %.1f s budget\n", tag,
                   e, budget_s_);
      std::exit(3);
    }
  }

  [[nodiscard]] double budget_s() const noexcept { return budget_s_; }

 private:
  double budget_s_;
  std::chrono::steady_clock::time_point start_;
};

/// Multiplexing-equivalence probe (DESIGN.md §5j), run by the figure benches
/// before their headline topology: the same contention-free spaced put
/// workload at several real-thread caps must produce byte-identical
/// per-rank simulated clocks and fabric counter totals. Returns the
/// verdicts for BENCH_*.json emission (CI asserts both true).
struct EquivalenceReport {
  bool clocks_equal = false;
  bool counters_equal = false;
  int levels = 0;
};

inline EquivalenceReport run_equivalence_probe(int nodes, int procs) {
  using sim::Nanos;
  const sim::Topology topo(nodes, procs);
  const int ranks = topo.num_ranks();
  constexpr int kIters = 8;
  constexpr std::size_t kLen = 2048;
  const Nanos slot = 8 * sim::kMicrosecond;
  const Nanos stride = slot * procs;

  struct Outcome {
    std::vector<Nanos> clocks;
    std::int64_t packets = 0, bytes = 0, writes = 0;
  };
  auto run_level = [&](unsigned max_threads) {
    sim::Cluster cluster(topo, /*seed=*/42);
    fabric::Fabric fab(topo, sim::CostModel::ares());
    std::vector<std::vector<char>> dst(
        static_cast<std::size_t>(nodes),
        std::vector<char>(static_cast<std::size_t>(procs) * kLen, 0));
    std::vector<char> src(kLen, 'x');
    cluster.run(
        [&](sim::Actor& a) {
          const int local = topo.local_index(a.rank());
          const sim::NodeId target = (a.node() + 1) % nodes;
          for (int i = 0; i < kIters; ++i) {
            a.advance_to(i * stride + local * slot);
            fab.put(a, target,
                    dst[static_cast<std::size_t>(target)].data() +
                        static_cast<std::size_t>(local) * kLen,
                    src.data(), kLen);
          }
        },
        max_threads);
    Outcome out;
    out.clocks.reserve(static_cast<std::size_t>(ranks));
    for (sim::Rank r = 0; r < ranks; ++r) {
      out.clocks.push_back(cluster.actor(r).now());
    }
    for (sim::NodeId n = 0; n < nodes; ++n) {
      const auto& c = fab.nic(n).counters();
      out.packets += c.total_packets.load();
      out.bytes += c.total_bytes.load();
      out.writes += c.write_count.load();
    }
    return out;
  };

  std::vector<unsigned> levels;
  for (unsigned cap : {static_cast<unsigned>(ranks),
                       static_cast<unsigned>(ranks > 4 ? ranks / 4 : 1), 16u,
                       2u}) {
    cap = cap == 0 ? 1 : cap;
    bool dup = false;
    for (unsigned seen : levels) dup = dup || seen == cap;
    if (!dup) levels.push_back(cap);
  }

  EquivalenceReport rep;
  rep.levels = static_cast<int>(levels.size());
  rep.clocks_equal = true;
  rep.counters_equal = true;
  const Outcome ref = run_level(levels[0]);
  for (std::size_t i = 1; i < levels.size(); ++i) {
    const Outcome got = run_level(levels[i]);
    rep.clocks_equal = rep.clocks_equal && got.clocks == ref.clocks;
    rep.counters_equal = rep.counters_equal && got.packets == ref.packets &&
                         got.bytes == ref.bytes && got.writes == ref.writes;
  }
  return rep;
}

inline void print_header(const char* figure, const char* description) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", figure, description);
  std::printf("(simulated time; paper-calibrated cost model, DESIGN.md §2)\n");
  std::printf("==============================================================\n");
}

inline void print_footer() { std::printf("\n"); }

}  // namespace hcl::bench
