// Shared benchmark utilities: flag parsing, table output, the Blob payload.
//
// Every bench binary prints the rows/series of the paper figure it
// regenerates, using simulated time (see DESIGN.md §2). Default parameters
// are scaled down from the paper's testbed so the full suite runs in
// minutes; pass --full for paper-scale runs, or individual flags to
// override.
#pragma once

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/hcl.h"

namespace hcl::bench {

/// Minimal command-line flags: --name=value or --name value; --full.
class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) args_.emplace_back(argv[i]);
  }

  [[nodiscard]] bool has(const std::string& name) const {
    for (const auto& a : args_) {
      if (a == name || a.rfind(name + "=", 0) == 0) return true;
    }
    return false;
  }

  [[nodiscard]] std::int64_t get(const std::string& name,
                                 std::int64_t fallback) const {
    for (std::size_t i = 0; i < args_.size(); ++i) {
      if (args_[i].rfind(name + "=", 0) == 0) {
        return std::atoll(args_[i].c_str() + name.size() + 1);
      }
      if (args_[i] == name && i + 1 < args_.size()) {
        return std::atoll(args_[i + 1].c_str());
      }
    }
    return fallback;
  }

  [[nodiscard]] bool full() const { return has("--full"); }

 private:
  std::vector<std::string> args_;
};

/// A payload whose *wire size* is `nominal` bytes but whose in-memory
/// footprint is 16 bytes — lets bandwidth sweeps charge multi-megabyte
/// transfers without materializing gigabytes of real data. The serializer
/// genuinely moves `nominal` bytes through the archive, so serialization
/// cost is real; only long-term storage is elided.
struct Blob {
  std::uint64_t nominal = 0;

  template <typename Ar>
  void serialize(Ar& ar) {
    if constexpr (Ar::is_saving) {
      ar.u64(nominal);
      static const std::vector<std::byte> zeros(1 << 16);
      std::uint64_t left = nominal;
      while (left > 0) {
        const std::uint64_t chunk = left < zeros.size() ? left : zeros.size();
        ar.raw_bytes(zeros.data(), chunk);
        left -= chunk;
      }
    } else {
      nominal = ar.u64();
      std::byte sink[1 << 12];
      std::uint64_t left = nominal;
      while (left > 0) {
        const std::uint64_t chunk = left < sizeof(sink) ? left : sizeof(sink);
        ar.raw_bytes(sink, chunk);
        left -= chunk;
      }
    }
  }

  friend bool operator==(const Blob& a, const Blob& b) {
    return a.nominal == b.nominal;
  }
};

inline std::string human_bytes(std::int64_t bytes) {
  char buf[32];
  if (bytes >= (1 << 20)) {
    std::snprintf(buf, sizeof(buf), "%" PRId64 "MB", bytes >> 20);
  } else {
    std::snprintf(buf, sizeof(buf), "%" PRId64 "KB", bytes >> 10);
  }
  return buf;
}

inline void print_header(const char* figure, const char* description) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", figure, description);
  std::printf("(simulated time; paper-calibrated cost model, DESIGN.md §2)\n");
  std::printf("==============================================================\n");
}

inline void print_footer() { std::printf("\n"); }

}  // namespace hcl::bench
