// Micro-benchmarks (google-benchmark) for the lock-free local structures —
// the real (wall-clock) performance of the building blocks underneath the
// distributed containers. Unlike the fig*/table* binaries, these numbers
// are REAL time, not simulated.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "lf/cuckoo_map.h"
#include "lf/ms_queue.h"
#include "lf/priority_queue.h"
#include "lf/skiplist_map.h"

namespace {

using namespace hcl;  // NOLINT

void BM_CuckooInsert(benchmark::State& state) {
  static lf::CuckooMap<std::uint64_t, std::uint64_t>* map = nullptr;
  if (state.thread_index() == 0) {
    map = new lf::CuckooMap<std::uint64_t, std::uint64_t>(1 << 14);
  }
  std::uint64_t k =
      static_cast<std::uint64_t>(state.thread_index()) << 40;
  for (auto _ : state) {
    benchmark::DoNotOptimize(map->insert(k++, k));
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    delete map;
    map = nullptr;
  }
}
BENCHMARK(BM_CuckooInsert)->ThreadRange(1, 4)->UseRealTime();

void BM_CuckooFind(benchmark::State& state) {
  static lf::CuckooMap<std::uint64_t, std::uint64_t>* map = nullptr;
  if (state.thread_index() == 0) {
    map = new lf::CuckooMap<std::uint64_t, std::uint64_t>(1 << 14);
    for (std::uint64_t i = 0; i < 50'000; ++i) map->insert(i, i);
  }
  Rng rng(state.thread_index() + 1);
  std::uint64_t hits = 0;
  for (auto _ : state) {
    std::uint64_t v;
    hits += map->find(rng.next_below(50'000), &v) ? 1 : 0;
  }
  benchmark::DoNotOptimize(hits);
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    delete map;
    map = nullptr;
  }
}
BENCHMARK(BM_CuckooFind)->ThreadRange(1, 4)->UseRealTime();

void BM_SkipListInsert(benchmark::State& state) {
  static lf::SkipListMap<std::uint64_t, std::uint64_t>* list = nullptr;
  if (state.thread_index() == 0) {
    list = new lf::SkipListMap<std::uint64_t, std::uint64_t>();
  }
  std::uint64_t k =
      static_cast<std::uint64_t>(state.thread_index()) << 40;
  for (auto _ : state) {
    benchmark::DoNotOptimize(list->insert(k++, k));
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    delete list;
    list = nullptr;
  }
}
BENCHMARK(BM_SkipListInsert)->ThreadRange(1, 4)->UseRealTime();

void BM_MsQueuePingPong(benchmark::State& state) {
  static lf::MsQueue<std::uint64_t>* queue = nullptr;
  if (state.thread_index() == 0) queue = new lf::MsQueue<std::uint64_t>();
  std::uint64_t v = 0;
  for (auto _ : state) {
    queue->push(v);
    std::uint64_t out;
    benchmark::DoNotOptimize(queue->pop(&out));
  }
  state.SetItemsProcessed(state.iterations() * 2);
  if (state.thread_index() == 0) {
    delete queue;
    queue = nullptr;
  }
}
BENCHMARK(BM_MsQueuePingPong)->ThreadRange(1, 4)->UseRealTime();

void BM_PriorityQueueMixed(benchmark::State& state) {
  static lf::PriorityQueue<std::uint64_t>* pq = nullptr;
  if (state.thread_index() == 0) pq = new lf::PriorityQueue<std::uint64_t>();
  Rng rng(state.thread_index() + 7);
  for (auto _ : state) {
    pq->push(rng.next_below(1'000'000));
    std::uint64_t out;
    benchmark::DoNotOptimize(pq->pop(&out));
  }
  state.SetItemsProcessed(state.iterations() * 2);
  if (state.thread_index() == 0) {
    delete pq;
    pq = nullptr;
  }
}
BENCHMARK(BM_PriorityQueueMixed)->ThreadRange(1, 4)->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
