// Figure 6(a) — scaling the distributed maps (§IV.C).
//
// Clients spread across all nodes issue insert-then-find workloads against
// HCL::unordered_map, HCL::map and BCL's unordered map while the number of
// partitions scales with the node count (8 -> 64 in the paper; scaled here).
// Reported: aggregate throughput (ops/s). Paper shapes: near-linear scaling
// with partitions; the ordered map ~54% slower than the unordered map;
// BCL ~9.1x slower on inserts and ~4.5x on finds.
#include <atomic>
#include <cstdio>
#include <memory>
#include <vector>

#include "bcl/bcl.h"
#include "bench_util.h"

namespace {

using namespace hcl;         // NOLINT
using namespace hcl::bench;  // NOLINT

double throughput(Context& ctx, std::int64_t total_ops) {
  const double s = ctx.elapsed_seconds();
  return s > 0 ? static_cast<double>(total_ops) / s : 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args args(argc, argv);
  const bool full = args.full();
  const int procs = static_cast<int>(args.get("--procs-per-node", full ? 40 : 4));
  const auto ops = args.get("--ops", full ? 8192 : 128);
  const std::int64_t op_bytes = args.get("--bytes", 64 << 10);
  // --nodes pins a single topology (the paper headline is 64 x 40 = 2560
  // ranks: `--nodes 64 --procs-per-node 40`); otherwise sweep the figure's
  // node counts. --budget-s arms the wall-clock assert.
  const int only_nodes = static_cast<int>(args.get("--nodes", 0));
  const WallBudget budget(static_cast<double>(args.get("--budget-s", 0)));
  std::vector<int> node_counts = full ? std::vector<int>{8, 16, 32, 64}
                                      : std::vector<int>{4, 8, 16, 32};
  if (only_nodes > 0) node_counts = {only_nodes};

  print_header("Figure 6(a)", "map scaling with partition count");
  std::printf("procs/node=%d ops/client=%" PRId64 " op=%s (paper: 2560 clients, 8192 x 64KB)\n\n",
              procs, ops, human_bytes(op_bytes).c_str());

  // Fidelity gate before the headline numbers: simulated results must be
  // independent of how many real threads the runner multiplexes ranks onto.
  const EquivalenceReport equiv =
      run_equivalence_probe(std::min(node_counts.back(), 8), procs);
  std::printf("multiplex equivalence: %d thread caps, clocks %s, counters %s\n\n",
              equiv.levels, equiv.clocks_equal ? "identical" : "DIVERGED",
              equiv.counters_equal ? "identical" : "DIVERGED");
  budget.check("equivalence-probe");
  std::printf("%6s | %13s %13s %13s | %13s %13s\n", "nodes",
              "HCL::umap ins", "HCL::map ins", "BCL::umap ins", "HCL::umap find",
              "BCL::umap find");

  // Headline metrics of the last (largest) topology, emitted as JSON below.
  double umap_ins = 0, umap_find = 0, omap_ins = 0, bcl_ins = 0, bcl_find = 0;
  std::atomic<std::int64_t> failed_ops{0};
  for (int nodes : node_counts) {
    Context::Config cfg;
    cfg.num_nodes = nodes;
    cfg.procs_per_node = procs;
    cfg.model.node_memory_budget_bytes = 512LL << 30;  // scaling study: no OOM
    Context ctx(cfg);
    const std::int64_t total_ops =
        static_cast<std::int64_t>(nodes) * procs * ops;

    auto client_keys = [&](sim::Actor& self, auto&& op) {
      for (std::int64_t i = 0; i < ops; ++i) {
        try {
          op(static_cast<std::uint64_t>(self.rank()) * ops + i);
        } catch (const HclError&) {
          failed_ops.fetch_add(1, std::memory_order_relaxed);
        }
      }
    };

    umap_ins = umap_find = omap_ins = bcl_ins = bcl_find = 0;
    failed_ops.store(0, std::memory_order_relaxed);
    {
      unordered_map<std::uint64_t, Blob> m(ctx);
      ctx.reset_measurement();
      ctx.run([&](sim::Actor& self) {
        client_keys(self, [&](std::uint64_t k) {
          m.insert(k, Blob{static_cast<std::uint64_t>(op_bytes)});
        });
      });
      umap_ins = throughput(ctx, total_ops);
      ctx.reset_measurement();
      ctx.run([&](sim::Actor& self) {
        Blob out;
        client_keys(self, [&](std::uint64_t k) { m.find(k, &out); });
      });
      umap_find = throughput(ctx, total_ops);
    }
    {
      map<std::uint64_t, Blob> m(ctx);
      ctx.reset_measurement();
      ctx.run([&](sim::Actor& self) {
        client_keys(self, [&](std::uint64_t k) {
          m.insert(k, Blob{static_cast<std::uint64_t>(op_bytes)});
        });
      });
      omap_ins = throughput(ctx, total_ops);
    }
    {
      ctx.reset_measurement();
      bcl::HashMap<std::uint64_t, Blob> m(
          ctx, static_cast<std::size_t>(total_ops) * 2, {},
          static_cast<std::size_t>(op_bytes));
      ctx.run([&](sim::Actor& self) {
        client_keys(self, [&](std::uint64_t k) {
          throw_if_error(m.insert(k, Blob{static_cast<std::uint64_t>(op_bytes)}));
        });
      });
      bcl_ins = throughput(ctx, total_ops);
      ctx.reset_measurement();
      ctx.run([&](sim::Actor& self) {
        Blob out;
        client_keys(self, [&](std::uint64_t k) { (void)m.find(k, &out); });
      });
      bcl_find = throughput(ctx, total_ops);
    }

    std::printf("%6d | %11.0f/s %11.0f/s %11.0f/s | %11.0f/s %11.0f/s\n",
                nodes, umap_ins, omap_ins, bcl_ins, umap_find, bcl_find);
    std::printf("%6s | ordered/unordered %.0f%% slower; HCL/BCL ins %.1fx, find %.1fx\n",
                "", 100.0 * (1.0 - omap_ins / umap_ins), umap_ins / bcl_ins,
                umap_find / bcl_find);
    budget.check(jsonf("nodes=%d", nodes).c_str());
  }

  // Deterministic record for the final (largest) topology. Wall-clock time is
  // printed, never serialized — the JSON must be byte-stable across hosts.
  const int last_nodes = node_counts.back();
  write_json(
      "BENCH_FIG6_MAPS.json",
      jsonf("{\"bench\": \"fig6_maps\", \"nodes\": %d, \"procs_per_node\": %d, "
            "\"ranks\": %d, \"ops_per_client\": %" PRId64 ", "
            "\"failed_ops\": %" PRId64 ", "
            "\"umap_insert_ops_s\": %.0f, \"omap_insert_ops_s\": %.0f, "
            "\"bcl_insert_ops_s\": %.0f, \"umap_find_ops_s\": %.0f, "
            "\"bcl_find_ops_s\": %.0f, "
            "\"omap_vs_umap_pct\": %.2f, \"umap_vs_bcl_insert_x\": %.2f, "
            "\"umap_vs_bcl_find_x\": %.2f, "
            "\"mux_levels\": %d, \"clocks_equal\": %s, "
            "\"counter_totals_equal\": %s}",
            last_nodes, procs, last_nodes * procs, ops,
            failed_ops.load(std::memory_order_relaxed),
            umap_ins, omap_ins, bcl_ins, umap_find, bcl_find,
            100.0 * (1.0 - omap_ins / umap_ins), umap_ins / bcl_ins,
            umap_find / bcl_find, equiv.levels,
            equiv.clocks_equal ? "true" : "false",
            equiv.counters_equal ? "true" : "false"));
  std::printf("wall: %.1f s%s\n", budget.elapsed_s(),
              budget.budget_s() > 0
                  ? jsonf(" (budget %.0f s)", budget.budget_s()).c_str()
                  : "");
  std::printf("\npaper: unordered_map scales ~linearly to ~600K op/s at 64 nodes;\n"
              "HCL::map ~54%% slower; BCL 9.1x slower inserts, 4.5x slower finds.\n");
  print_footer();
  return 0;
}
