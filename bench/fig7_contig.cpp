// Figure 7(b) — Meraculous contig generation, weak scaling (§IV.D.2).
//
// Builds a de Bruijn graph of overlapping k-mers in a distributed unordered
// map (read-modify-write of extension masks), then walks unique-extension
// chains to emit contigs (find-dominated). Paper: HCL 1.8x faster at the
// smallest scale to 12x at the largest.
#include <cstdio>
#include <vector>

#include "apps/meraculous.h"
#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace hcl;         // NOLINT
  using namespace hcl::bench;  // NOLINT
  using namespace hcl::apps;   // NOLINT

  Args args(argc, argv);
  const bool full = args.full();
  const int procs = static_cast<int>(args.get("--procs-per-node", 4));
  const auto ref_per_node = args.get("--ref-per-node", full ? 50'000 : 3'000);
  std::vector<int> node_counts = full ? std::vector<int>{8, 16, 32, 64}
                                      : std::vector<int>{2, 4, 8, 16};

  print_header("Figure 7(b)", "Meraculous contig generation, weak scaling");
  std::printf("procs/node=%d reference bases/node=%" PRId64 " (weak scaling, k=21)\n\n",
              procs, ref_per_node);
  std::printf("%6s | %10s %10s | %8s | %9s %12s\n", "nodes", "HCL (s)",
              "BCL (s)", "BCL/HCL", "contigs", "bases");

  double last_hcl_s = 0, last_bcl_s = 0;
  std::uint64_t last_contigs = 0, last_bases = 0;
  for (int nodes : node_counts) {
    Context::Config cfg;
    cfg.num_nodes = nodes;
    cfg.procs_per_node = procs;
    cfg.model.node_memory_budget_bytes = 512LL << 30;
    Context ctx(cfg);

    GenomeConfig g;
    g.reference_length = static_cast<std::size_t>(ref_per_node) * nodes;
    g.read_length = 100;
    g.coverage = 3.0;
    g.k = 21;
    auto genome = generate_genome(g);

    auto hcl_result = run_contig_hcl(ctx, genome);
    auto bcl_result = run_contig_bcl(ctx, genome);

    std::printf("%6d | %10.3f %10.3f | %7.2fx | %9" PRIu64 " %12" PRIu64 "\n",
                nodes, hcl_result.seconds, bcl_result.seconds,
                bcl_result.seconds / hcl_result.seconds, hcl_result.contigs,
                hcl_result.total_bases);
    last_hcl_s = hcl_result.seconds;
    last_bcl_s = bcl_result.seconds;
    last_contigs = hcl_result.contigs;
    last_bases = hcl_result.total_bases;
  }
  write_json(
      "BENCH_FIG7_CONTIG.json",
      jsonf("{\"bench\": \"fig7_contig\", \"nodes\": %d, "
            "\"procs_per_node\": %d, \"ref_per_node\": %" PRId64 ", "
            "\"hcl_seconds\": %.3f, \"bcl_seconds\": %.3f, "
            "\"bcl_hcl_ratio\": %.2f, \"contigs\": %" PRIu64 ", "
            "\"bases\": %" PRIu64 "}",
            node_counts.back(), procs, ref_per_node, last_hcl_s, last_bcl_s,
            last_bcl_s / last_hcl_s, last_contigs, last_bases));
  std::printf("\npaper: HCL 1.8x faster at 8 nodes growing to 12x at 64 nodes.\n");
  print_footer();
  return 0;
}
