// Table I — operation cost model validation.
//
// The paper expresses each container operation's cost as a formula over
//   F (remote function invocations), L (local ops), R (local reads),
//   W (local writes), N (entries), E (elements).
// This bench performs one remote-partition operation per row, reads the
// library's operation counters, and prints measured counts against the
// paper's formula. A second section verifies the hybrid model: co-located
// operations cost 0 F.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"

namespace {

using namespace hcl;         // NOLINT
using namespace hcl::bench;  // NOLINT

struct Row {
  const char* structure;
  const char* op;
  const char* formula;
  core::OpStats::Snapshot got;
};

std::vector<Row> g_rows;

void report(const char* structure, const char* op, const char* formula,
            Context& ctx) {
  g_rows.push_back({structure, op, formula, ctx.op_stats().snapshot()});
  ctx.reset_measurement();
}

/// First key whose partition is remote (resp. local) for rank 0.
template <typename C>
int pick_key(C& container, Context& ctx, bool want_local) {
  for (int k = 0;; ++k) {
    const bool local = container.partition_owner(container.partition_of(k)) ==
                       ctx.topology().node_of(0);
    if (local == want_local) return k;
  }
}

}  // namespace

int main(int argc, char** argv) {
  Args args(argc, argv);
  (void)args;
  print_header("Table I", "per-operation cost accounting (F / L / R / W)");

  Context::Config cfg;
  cfg.num_nodes = 2;
  cfg.procs_per_node = 1;
  cfg.model = sim::CostModel::zero();
  Context ctx(cfg);

  // ---- unordered_map -----------------------------------------------------
  {
    unordered_map<int, int> m(ctx);
    const int rk = pick_key(m, ctx, false);
    const int lk = pick_key(m, ctx, true);
    ctx.reset_measurement();
    ctx.run_one(0, [&](sim::Actor&) { m.insert(rk, 1); });
    report("unordered_map", "insert (remote)", "F + L + W", ctx);
    ctx.run_one(0, [&](sim::Actor&) { int v; m.find(rk, &v); });
    report("unordered_map", "find (remote)", "F + L + R", ctx);
    ctx.run_one(0, [&](sim::Actor&) { m.insert(lk, 1); });
    report("unordered_map", "insert (hybrid)", "L + W (no F)", ctx);
    ctx.run_one(0, [&](sim::Actor&) { m.resize(1, 4096); });
    report("unordered_map", "resize (remote)", "F + N(R + W)", ctx);
  }

  // ---- map (ordered) -----------------------------------------------------
  {
    map<int, int> m(ctx);
    const int rk = pick_key(m, ctx, false);
    // Populate so log N > 1 is visible in L.
    ctx.run_one(0, [&](sim::Actor&) {
      for (int i = 0; i < 64; ++i) m.insert(rk + 1000 + i * 2, i);
    });
    ctx.reset_measurement();
    ctx.run_one(0, [&](sim::Actor&) { m.insert(rk, 1); });
    report("map", "insert (remote)", "F + L*logN + W", ctx);
    ctx.run_one(0, [&](sim::Actor&) { int v; m.find(rk, &v); });
    report("map", "find (remote)", "F + L*logN + R", ctx);
  }

  // ---- unordered_set -------------------------------------------------------
  {
    unordered_set<int> s(ctx);
    const int rk = pick_key(s, ctx, false);
    ctx.reset_measurement();
    ctx.run_one(0, [&](sim::Actor&) { s.insert(rk); });
    report("unordered_set", "insert (remote)", "F + L + W", ctx);
    ctx.run_one(0, [&](sim::Actor&) { s.find(rk); });
    report("unordered_set", "find (remote)", "F + L + R", ctx);
  }

  // ---- set (ordered) -------------------------------------------------------
  {
    set<int> s(ctx);
    const int rk = pick_key(s, ctx, false);
    ctx.reset_measurement();
    ctx.run_one(0, [&](sim::Actor&) { s.insert(rk); });
    report("set", "insert (remote)", "F + L*logN + W", ctx);
    ctx.run_one(0, [&](sim::Actor&) { s.find(rk); });
    report("set", "find (remote)", "F + L*logN + R", ctx);
  }

  // ---- queue ---------------------------------------------------------------
  {
    core::ContainerOptions options;
    options.first_node = 1;  // remote from rank 0
    queue<int> q(ctx, options);
    ctx.reset_measurement();
    ctx.run_one(0, [&](sim::Actor&) { q.push(7); });
    report("queue", "push (remote)", "F + L + W", ctx);
    ctx.run_one(0, [&](sim::Actor&) { int v; q.pop(&v); });
    report("queue", "pop (remote)", "F + L + R", ctx);
    ctx.run_one(0, [&](sim::Actor&) {
      q.push(std::vector<int>{1, 2, 3, 4});
    });
    report("queue", "push bulk E=4", "F + L + E*W", ctx);
    ctx.run_one(0, [&](sim::Actor&) {
      std::vector<int> out;
      q.pop(&out, 4);
    });
    report("queue", "pop bulk E=4", "F + L + E*R", ctx);
  }

  // ---- priority_queue --------------------------------------------------------
  {
    core::ContainerOptions options;
    options.first_node = 1;
    priority_queue<int> pq(ctx, options);
    ctx.reset_measurement();
    ctx.run_one(0, [&](sim::Actor&) { pq.push(7); });
    report("priority_queue", "push (remote)", "F + L*logN + W", ctx);
    ctx.run_one(0, [&](sim::Actor&) { int v; pq.pop(&v); });
    report("priority_queue", "pop (remote)", "F + L + R", ctx);
  }

  std::printf("%-16s %-18s %-18s %4s %4s %4s %4s\n", "structure", "operation",
              "paper formula", "F", "L", "R", "W");
  for (const auto& row : g_rows) {
    std::printf("%-16s %-18s %-18s %4" PRId64 " %4" PRId64 " %4" PRId64
                " %4" PRId64 "\n",
                row.structure, row.op, row.formula, row.got.remote_invocations,
                row.got.local_ops, row.got.local_reads, row.got.local_writes);
  }
  std::printf(
      "\nChecks: every remote op shows exactly F=1 (one bundled invocation);\n"
      "hybrid ops show F=0; ordered structures show L=log N descent steps;\n"
      "resize shows N reads + N writes; bulk ops keep F=1 for E elements.\n");
  print_footer();
  return 0;
}
