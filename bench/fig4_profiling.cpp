// Figure 4 — profiling HCL vs BCL (§IV.B.1).
//
// 40 clients on node 0, one target partition on node 1, 8192 writes of 4 KB
// per client. Three time series sampled per simulated-time bucket:
//   (a) NIC compute utilization at the target — the paper reports ~33% for
//       HCL's RPC-over-RDMA vs ~60% (spiking 90%) for BCL's remote-CAS
//       traffic,
//   (b) resident memory — BCL pre-allocates its static partition plus
//       per-client exclusive buffers up front; HCL starts at 128 buckets and
//       grows dynamically,
//   (c) packets per second — BCL moves ~4x more packets for the same
//       payload (per-op CAS round trips) and is slower to saturate.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bcl/bcl.h"
#include "bench_util.h"
#include "common/rng.h"

namespace {

using namespace hcl;         // NOLINT
using namespace hcl::bench;  // NOLINT

struct Series {
  double seconds = 0;
  std::vector<double> nic_util;      // fraction per bucket
  std::vector<double> packets_per_s;
  std::vector<double> memory_mb;
  std::vector<double> cache_hits_per_s;  // client-cache hits the NIC never saw
};

Series sample(Context& ctx, sim::NodeId target, sim::NodeId client_node) {
  Series s;
  s.seconds = ctx.elapsed_seconds();
  auto& counters = ctx.fabric().nic(target).counters();
  const auto width = counters.packets.bucket_width();
  const auto n = static_cast<std::size_t>(
                     sim::from_seconds(s.seconds) / width) + 1;
  const auto atomic_ns = static_cast<double>(ctx.model().nic_atomic_service_ns);
  const auto mem0 = ctx.fabric().memory_gauge(client_node).snapshot_filled();
  const auto mem1 = ctx.fabric().memory_gauge(target).snapshot_filled();
  for (std::size_t b = 0; b < n && b < counters.busy.size(); ++b) {
    // NIC compute = server-stub time over nic_cores contexts + remote-atomic
    // RMW time on its single context.
    (void)atomic_ns;
    const double core_busy = static_cast<double>(counters.busy.bucket(b));
    const double atomic_busy =
        static_cast<double>(counters.atomic_busy.bucket(b));
    s.nic_util.push_back(core_busy / (static_cast<double>(width) *
                                      static_cast<double>(ctx.model().nic_cores)) +
                         atomic_busy / static_cast<double>(width));
    s.packets_per_s.push_back(static_cast<double>(counters.packets.bucket(b)) /
                              sim::to_seconds(width));
    const double bytes = static_cast<double>(mem0[b] + mem1[b]);
    s.memory_mb.push_back(bytes / (1 << 20));
    s.cache_hits_per_s.push_back(
        static_cast<double>(counters.cache_hits.bucket(b)) /
        sim::to_seconds(width));
  }
  return s;
}

// Per-stage RoR pipeline breakdown from the tracer's stage histograms
// (DESIGN.md §5e) — the span-level view behind Fig. 4's utilization curves.
void print_stage_breakdown(hcl::Context& ctx, sim::NodeId target) {
  auto& tracer = ctx.tracer();
  if (!tracer.enabled()) return;
  std::printf("\nper-stage pipeline breakdown at node %d (%lld spans):\n",
              static_cast<int>(target),
              static_cast<long long>(tracer.recorded()));
  std::printf("  %-9s %10s %12s %12s %12s %12s\n", "stage", "ops", "mean ns",
              "p50 ns", "p99 ns", "max ns");
  for (std::size_t s = 0; s < obs::kNumStages; ++s) {
    const auto stage = static_cast<obs::Stage>(s);
    if (stage == obs::Stage::kInject) continue;  // subsumed by the wire stage
    const auto& h = tracer.stage_histogram(target, stage);
    if (h.count() == 0) continue;
    std::printf("  %-9s %10lld %12.0f %12lld %12lld %12lld\n",
                std::string(obs::to_string(stage)).c_str(),
                static_cast<long long>(h.count()), h.mean(),
                static_cast<long long>(h.percentile(50)),
                static_cast<long long>(h.percentile(99)),
                static_cast<long long>(h.max()));
  }
}

// Cross-check the span-level stage sums against the fabric's independent
// counters; the two accountings must agree within 1% (they are exact on
// fault-free runs). Returns 1 on divergence so CI fails loudly.
int check_reconciliation(hcl::Context& ctx, int num_nodes) {
  auto& tracer = ctx.tracer();
  if (!tracer.enabled()) return 0;
  const auto pct = [](double a, double b) {
    const double denom = std::max(std::abs(a), std::abs(b));
    return denom > 0 ? 100.0 * std::abs(a - b) / denom : 0.0;
  };
  int rc = 0;
  long long span_handler = 0, busy = 0, span_packets = 0, packets = 0;
  for (int n = 0; n < num_nodes; ++n) {
    span_handler += tracer.accounted_handler_ns(n);
    busy += ctx.fabric().nic(n).counters().handler_busy_ns.load();
    span_packets += tracer.accounted_packets(n);
    packets += ctx.fabric().nic(n).counters().total_packets.load();
  }
  const double handler_delta = pct(static_cast<double>(span_handler),
                                   static_cast<double>(busy));
  const double packet_delta = pct(static_cast<double>(span_packets),
                                  static_cast<double>(packets));
  std::printf("span/counter reconciliation: handler %lld vs %lld ns "
              "(d=%.3f%%); packets %lld vs %lld (d=%.3f%%)\n",
              span_handler, busy, handler_delta, span_packets, packets,
              packet_delta);
  if (handler_delta > 1.0 || packet_delta > 1.0) {
    std::fprintf(stderr, "FAIL: span stage sums diverge >1%% from counters\n");
    rc = 1;
  }
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  Args args(argc, argv);
  const int clients = static_cast<int>(args.get("--clients", 40));
  const auto ops = args.get("--ops", args.full() ? 8192 : 1024);
  const std::int64_t op_bytes = args.get("--bytes", 4096);

  print_header("Figure 4", "system profiling: HCL RPC-over-RDMA vs BCL client-side");
  std::printf("clients=%d ops/client=%" PRId64 " op=%s (target partition on node 1)\n\n",
              clients, ops, human_bytes(op_bytes).c_str());

  Context::Config cfg;
  cfg.num_nodes = 2;
  cfg.procs_per_node = clients;
  cfg.fabric_options.series_bucket = 10 * sim::kMillisecond;
  cfg.fabric_options.series_len = 4096;
  // Trace the HCL phase for the per-stage breakdown (free in simulated time:
  // trace_span_ns defaults to 0, so the Fig. 4 curves are unchanged). The
  // path stays empty — the Chrome-trace export happens in the dedicated
  // section at the end, from its own Context.
  cfg.trace.enabled = true;
  cfg.trace.sample_every = 64;
  cfg.trace.path.clear();
  Context ctx(cfg);
  int rc = 0;

  // ---- HCL: distributed map, partition on node 1 -------------------------
  Series hcl_series;
  {
    core::ContainerOptions options;
    options.num_partitions = 1;
    options.first_node = 1;
    unordered_map<std::uint64_t, Blob> map(ctx, options);
    ctx.reset_measurement();
    ctx.run([&](sim::Actor& self) {
      if (self.node() != 0) return;
      for (std::int64_t i = 0; i < ops; ++i) {
        map.insert(static_cast<std::uint64_t>(self.rank()) * ops + i,
                   Blob{static_cast<std::uint64_t>(op_bytes)});
      }
    });
    hcl_series = sample(ctx, 1, 0);
    // Span-level view of the same run, printed before the BCL phase resets
    // the measurement window (which clears the tracer too).
    print_stage_breakdown(ctx, 1);
    rc |= check_reconciliation(ctx, 2);
  }

  // ---- BCL: static hashmap, partition on node 1 --------------------------
  Series bcl_series;
  {
    ctx.reset_measurement();
    core::ContainerOptions options;
    options.num_partitions = 1;
    options.first_node = 1;
    bcl::HashMap<std::uint64_t, Blob> map(
        ctx, static_cast<std::size_t>(clients) * ops * 2, options);
    ctx.run([&](sim::Actor& self) {
      if (self.node() != 0) return;
      for (std::int64_t i = 0; i < ops; ++i) {
        throw_if_error(
            map.insert(static_cast<std::uint64_t>(self.rank()) * ops + i,
                       Blob{static_cast<std::uint64_t>(op_bytes)}));
      }
    });
    bcl_series = sample(ctx, 1, 0);
  }

  std::printf("end-to-end: HCL %.2f s   BCL %.2f s   (BCL/HCL = %.2fx; paper: 10.5 s vs 28 s = 2.7x)\n\n",
              hcl_series.seconds, bcl_series.seconds,
              bcl_series.seconds / hcl_series.seconds);

  const std::size_t rows = std::max(hcl_series.nic_util.size(),
                                    bcl_series.nic_util.size());
  std::printf("%6s | %12s %12s | %12s %12s | %10s %10s\n", "t(ms)",
              "HCL util%", "BCL util%", "HCL pkt/s", "BCL pkt/s", "HCL MB",
              "BCL MB");
  auto at = [](const std::vector<double>& v, std::size_t i) {
    return i < v.size() ? v[i] : 0.0;
  };
  const auto step = std::max<std::size_t>(1, rows / 24);
  for (std::size_t b = 0; b < rows; b += step) {
    std::printf("%6zu | %12.1f %12.1f | %12.0f %12.0f | %10.1f %10.1f\n",
                b * 10, 100 * at(hcl_series.nic_util, b),
                100 * at(bcl_series.nic_util, b), at(hcl_series.packets_per_s, b),
                at(bcl_series.packets_per_s, b), at(hcl_series.memory_mb, b),
                at(bcl_series.memory_mb, b));
  }

  // Aggregates (the headline comparisons).
  auto mean_nonzero = [](const std::vector<double>& v) {
    double sum = 0;
    int n = 0;
    for (double x : v) {
      if (x > 0) {
        sum += x;
        ++n;
      }
    }
    return n > 0 ? sum / n : 0.0;
  };
  const double hcl_util =
      100 * ctx.fabric().nic_compute_utilization(1, sim::from_seconds(bcl_series.seconds));
  (void)hcl_util;
  std::printf(
      "\nmean NIC compute utilization: HCL %.0f%%  BCL %.0f%%   (paper: ~33%% vs ~60%%)\n",
      100 * mean_nonzero(hcl_series.nic_util), 100 * mean_nonzero(bcl_series.nic_util));
  std::printf("mean packet rate: HCL %.0f pkt/s  BCL %.0f pkt/s — HCL sustains %.1fx BCL's rate\n"
              "(paper: \"BCL achieves 4x less packet rate\" and is slower to saturate)\n",
              mean_nonzero(hcl_series.packets_per_s),
              mean_nonzero(bcl_series.packets_per_s),
              mean_nonzero(hcl_series.packets_per_s) /
                  std::max(1.0, mean_nonzero(bcl_series.packets_per_s)));
  std::printf("peak memory: HCL %.1f MB (dynamic ramp)  BCL %.1f MB (static from t=0)\n",
              *std::max_element(hcl_series.memory_mb.begin(), hcl_series.memory_mb.end()),
              *std::max_element(bcl_series.memory_mb.begin(), bcl_series.memory_mb.end()));
  write_json(
      "BENCH_FIG4_PROFILING.json",
      jsonf("{\"bench\": \"fig4_profiling\", \"clients\": %d, "
            "\"ops_per_client\": %" PRId64 ", "
            "\"hcl_seconds\": %.3f, \"bcl_seconds\": %.3f, "
            "\"bcl_hcl_ratio\": %.2f, "
            "\"hcl_mean_nic_util_pct\": %.1f, \"bcl_mean_nic_util_pct\": %.1f, "
            "\"hcl_bcl_packet_rate_x\": %.2f}",
            clients, ops, hcl_series.seconds, bcl_series.seconds,
            bcl_series.seconds / hcl_series.seconds,
            100 * mean_nonzero(hcl_series.nic_util),
            100 * mean_nonzero(bcl_series.nic_util),
            mean_nonzero(hcl_series.packets_per_s) /
                std::max(1.0, mean_nonzero(bcl_series.packets_per_s))));

  // ---- Read cache: RPC traffic a warm cache removes (DESIGN.md §5d) -------
  // Same topology, Zipfian read-back of a warm keyspace, cache off vs. on.
  // Hits are absorbed client-side, so the target NIC's packet rate and
  // compute utilization drop by the hit fraction; cache_hits/s shows where
  // the reads went instead.
  {
    constexpr std::uint64_t kKeys = 1024;
    Series cold, warm;
    std::int64_t hits = 0, misses = 0;
    for (const bool cached : {false, true}) {
      Context::Config read_cfg = cfg;
      Context rctx(read_cfg);
      core::ContainerOptions options;
      options.num_partitions = 1;
      options.first_node = 1;
      if (cached) {
        options.cache.mode = cache::CacheMode::kInvalidate;
        options.cache.ttl_ns = 10 * sim::kMillisecond;
        options.cache.capacity = kKeys;
      } else {
        options.cache.mode = cache::CacheMode::kOff;
      }
      unordered_map<std::uint64_t, std::uint64_t> map(rctx, options);
      rctx.run_one(0, [&](sim::Actor&) {
        for (std::uint64_t k = 0; k < kKeys; ++k) (void)map.upsert(k, k);
      });
      rctx.reset_measurement();
      rctx.run([&](sim::Actor& self) {
        if (self.node() != 0) return;
        Rng rng(static_cast<std::uint64_t>(self.rank()) + 1);
        ZipfGen zipf(kKeys, 0.99, rng);
        std::uint64_t v = 0;
        for (std::int64_t i = 0; i < ops; ++i) {
          (void)map.find(zipf.next_scrambled(), &v);
        }
      });
      (cached ? warm : cold) = sample(rctx, 1, 0);
      if (cached) {
        const auto stats = map.cache_stats();
        hits = stats.hits;
        misses = stats.misses;
      }
    }
    // Totals, not rates: the cached run finishes sooner at a similar service
    // rate, so the removed traffic shows up as fewer packets end to end.
    auto total_packets = [&](const Series& s) {
      return mean_nonzero(s.packets_per_s) * s.seconds;
    };
    std::printf(
        "\nread-back (zipf .99, %" PRId64 " reads/client): cache-off %.2f ms vs "
        "cache-on %.2f ms (%.1fx)\n"
        "  target NIC: %.0fk -> %.0fk packets total, util %.1f%% -> %.1f%%; "
        "%.0f cache hits/s absorbed client-side (%" PRId64 " hits, %" PRId64
        " misses)\n",
        ops, cold.seconds * 1e3, warm.seconds * 1e3,
        cold.seconds / warm.seconds, total_packets(cold) / 1e3,
        total_packets(warm) / 1e3, 100 * mean_nonzero(cold.nic_util),
        100 * mean_nonzero(warm.nic_util),
        mean_nonzero(warm.cache_hits_per_s), hits, misses);
  }
  // ---- Traced batched+cached Zipfian read-back: Chrome-trace export ------
  // A fully-sampled run of the coalesced + cached read path, exported as
  // Chrome trace events (load in Perfetto or chrome://tracing). The CI
  // trace leg json-parses the file to keep the exporter well-formed.
  {
    const char* env_path = std::getenv("HCL_TRACE_PATH");
    const std::string trace_path =
        env_path != nullptr ? env_path : "fig4_trace.json";
    constexpr std::uint64_t kTraceKeys = 512;
    Context::Config tcfg = cfg;
    tcfg.trace.enabled = true;
    tcfg.trace.sample_every = 4;
    tcfg.trace.path.clear();  // exported explicitly below
    Context tctx(tcfg);
    core::ContainerOptions options;
    options.num_partitions = 1;
    options.first_node = 1;
    options.cache.mode = cache::CacheMode::kInvalidate;
    options.cache.ttl_ns = 10 * sim::kMillisecond;
    options.cache.capacity = kTraceKeys;
    unordered_map<std::uint64_t, std::uint64_t> map(tctx, options);
    tctx.run_one(0, [&](sim::Actor&) {
      std::vector<std::uint64_t> keys(kTraceKeys), values(kTraceKeys);
      for (std::uint64_t k = 0; k < kTraceKeys; ++k) keys[k] = values[k] = k;
      (void)map.insert_batch(keys, values);  // batch parent + per-op spans
    });
    tctx.run([&](sim::Actor& self) {
      if (self.node() != 0) return;
      Rng rng(static_cast<std::uint64_t>(self.rank()) + 101);
      ZipfGen zipf(kTraceKeys, 0.99, rng);
      std::vector<std::uint64_t> keys(64);
      for (int round = 0; round < 4; ++round) {
        for (auto& k : keys) k = zipf.next_scrambled();
        (void)map.find_batch(keys);  // cache hit/miss + batched RPC spans
      }
    });
    auto& tracer = tctx.tracer();
    const Status exported = tracer.export_json(trace_path);
    if (exported.ok()) {
      std::printf("\ntrace: %lld spans recorded, %lld retained (1-in-%llu) -> %s\n",
                  static_cast<long long>(tracer.recorded()),
                  static_cast<long long>(tracer.retained()),
                  static_cast<unsigned long long>(tracer.policy().sample_every),
                  trace_path.c_str());
    } else {
      std::fprintf(stderr, "trace export failed: %s\n",
                   exported.to_string().c_str());
      rc = 1;
    }
    rc |= check_reconciliation(tctx, 2);
  }
  print_footer();
  return rc;
}
