// Figure 7(a) — ISx integer sort, weak scaling (§IV.D.1).
//
// Bucket sort over uniformly distributed keys, weak-scaled with node count
// (data per rank constant). HCL's variant pushes keys into per-node
// priority queues, so the sort cost hides behind the network; BCL pays
// per-key client-side queue pushes plus a local sort phase. Paper: BCL
// scales linearly to 686 s at 64 nodes; HCL scales sub-linearly (~1.4x per
// doubling) to 57 s — ~12x faster at the largest scale.
#include <cstdio>
#include <vector>

#include "apps/isx.h"
#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace hcl;         // NOLINT
  using namespace hcl::bench;  // NOLINT
  using namespace hcl::apps;   // NOLINT

  Args args(argc, argv);
  const bool full = args.full();
  const int procs = static_cast<int>(args.get("--procs-per-node", 4));
  const auto keys = args.get("--keys-per-rank", full ? 1 << 14 : 1 << 10);
  std::vector<int> node_counts = full ? std::vector<int>{8, 16, 32, 64}
                                      : std::vector<int>{2, 4, 8, 16};

  print_header("Figure 7(a)", "ISx bucket sort, weak scaling");
  std::printf("procs/node=%d keys/rank=%" PRId64 " (weak scaling)\n\n", procs, keys);
  std::printf("%6s | %10s %10s | %8s | %8s %8s\n", "nodes", "HCL (s)",
              "BCL (s)", "BCL/HCL", "sortedH", "sortedB");

  double prev_hcl = 0;
  for (int nodes : node_counts) {
    Context::Config cfg;
    cfg.num_nodes = nodes;
    cfg.procs_per_node = procs;
    cfg.model.node_memory_budget_bytes = 512LL << 30;
    Context ctx(cfg);

    IsxConfig isx;
    isx.keys_per_rank = static_cast<std::size_t>(keys);
    auto hcl_result = run_isx_hcl(ctx, isx);
    auto bcl_result = run_isx_bcl(ctx, isx);

    std::printf("%6d | %10.3f %10.3f | %7.1fx | %8s %8s", nodes,
                hcl_result.seconds, bcl_result.seconds,
                bcl_result.seconds / hcl_result.seconds,
                hcl_result.sorted ? "yes" : "NO",
                bcl_result.sorted ? "yes" : "NO");
    if (prev_hcl > 0) {
      std::printf("   (HCL growth per doubling: %.2fx)", hcl_result.seconds / prev_hcl);
    }
    std::printf("\n");
    prev_hcl = hcl_result.seconds;
  }
  std::printf("\npaper: BCL 686 s at the largest scale, linear growth; HCL 57 s,\n"
              "~1.4x growth per doubling (the priority queue hides the sort).\n");
  hcl::bench::print_footer();
  return 0;
}
