// Figure 7(a) — ISx integer sort, weak scaling (§IV.D.1).
//
// Bucket sort over uniformly distributed keys, weak-scaled with node count
// (data per rank constant). HCL's variant pushes keys into per-node
// priority queues, so the sort cost hides behind the network; BCL pays
// per-key client-side queue pushes plus a local sort phase. Paper: BCL
// scales linearly to 686 s at 64 nodes; HCL scales sub-linearly (~1.4x per
// doubling) to 57 s — ~12x faster at the largest scale.
#include <cstdio>
#include <vector>

#include "apps/isx.h"
#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace hcl;         // NOLINT
  using namespace hcl::bench;  // NOLINT
  using namespace hcl::apps;   // NOLINT

  Args args(argc, argv);
  const bool full = args.full();
  const int procs = static_cast<int>(args.get("--procs-per-node", 4));
  const auto keys = args.get("--keys-per-rank", full ? 1 << 14 : 1 << 10);
  // --nodes pins a single topology (paper headline: --nodes 64
  // --procs-per-node 40); --budget-s arms the wall-clock assert.
  const int only_nodes = static_cast<int>(args.get("--nodes", 0));
  const WallBudget budget(static_cast<double>(args.get("--budget-s", 0)));
  std::vector<int> node_counts = full ? std::vector<int>{8, 16, 32, 64}
                                      : std::vector<int>{2, 4, 8, 16};
  if (only_nodes > 0) node_counts = {only_nodes};

  print_header("Figure 7(a)", "ISx bucket sort, weak scaling");
  std::printf("procs/node=%d keys/rank=%" PRId64 " (weak scaling)\n\n", procs, keys);
  std::printf("%6s | %10s %10s | %8s | %8s %8s\n", "nodes", "HCL (s)",
              "BCL (s)", "BCL/HCL", "sortedH", "sortedB");

  double prev_hcl = 0;
  double last_hcl_s = 0, last_bcl_s = 0;
  bool last_sorted_hcl = false, last_sorted_bcl = false;
  std::int64_t failed_ops = 0;  // here: runs that produced an unsorted result
  for (int nodes : node_counts) {
    Context::Config cfg;
    cfg.num_nodes = nodes;
    cfg.procs_per_node = procs;
    cfg.model.node_memory_budget_bytes = 512LL << 30;
    Context ctx(cfg);

    IsxConfig isx;
    isx.keys_per_rank = static_cast<std::size_t>(keys);
    auto hcl_result = run_isx_hcl(ctx, isx);
    auto bcl_result = run_isx_bcl(ctx, isx);

    std::printf("%6d | %10.3f %10.3f | %7.1fx | %8s %8s", nodes,
                hcl_result.seconds, bcl_result.seconds,
                bcl_result.seconds / hcl_result.seconds,
                hcl_result.sorted ? "yes" : "NO",
                bcl_result.sorted ? "yes" : "NO");
    if (prev_hcl > 0) {
      std::printf("   (HCL growth per doubling: %.2fx)", hcl_result.seconds / prev_hcl);
    }
    std::printf("\n");
    prev_hcl = hcl_result.seconds;
    last_hcl_s = hcl_result.seconds;
    last_bcl_s = bcl_result.seconds;
    last_sorted_hcl = hcl_result.sorted;
    last_sorted_bcl = bcl_result.sorted;
    if (!hcl_result.sorted) ++failed_ops;
    if (!bcl_result.sorted) ++failed_ops;
    budget.check(jsonf("nodes=%d", nodes).c_str());
  }

  write_json(
      "BENCH_FIG7_ISX.json",
      jsonf("{\"bench\": \"fig7_isx\", \"nodes\": %d, \"procs_per_node\": %d, "
            "\"keys_per_rank\": %" PRId64 ", \"failed_ops\": %" PRId64 ", "
            "\"hcl_seconds\": %.3f, \"bcl_seconds\": %.3f, "
            "\"bcl_hcl_ratio\": %.2f, \"sorted_hcl\": %s, \"sorted_bcl\": %s}",
            node_counts.back(), procs, keys, failed_ops, last_hcl_s, last_bcl_s,
            last_bcl_s / last_hcl_s, last_sorted_hcl ? "true" : "false",
            last_sorted_bcl ? "true" : "false"));
  std::printf("wall: %.1f s%s\n", budget.elapsed_s(),
              budget.budget_s() > 0
                  ? jsonf(" (budget %.0f s)", budget.budget_s()).c_str()
                  : "");
  std::printf("\npaper: BCL 686 s at the largest scale, linear growth; HCL 57 s,\n"
              "~1.4x growth per doubling (the priority queue hides the sort).\n");
  hcl::bench::print_footer();
  return 0;
}
