// Figure 7(c) — Meraculous k-mer counting, weak scaling (§IV.D.2).
//
// A histogram of k-mer occurrences built in a distributed unordered map.
// HCL increments via one registered-mutator invocation per k-mer; BCL's
// client-side model needs probe + CAS-lock + read + write + CAS-unlock.
// Paper: HCL 2.17x faster at the smallest scale to 8x at the largest.
#include <cstdio>
#include <vector>

#include "apps/meraculous.h"
#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace hcl;         // NOLINT
  using namespace hcl::bench;  // NOLINT
  using namespace hcl::apps;   // NOLINT

  Args args(argc, argv);
  const bool full = args.full();
  const int procs = static_cast<int>(args.get("--procs-per-node", 4));
  const auto ref_per_node = args.get("--ref-per-node", full ? 50'000 : 4'000);
  std::vector<int> node_counts = full ? std::vector<int>{8, 16, 32, 64}
                                      : std::vector<int>{2, 4, 8, 16};

  print_header("Figure 7(c)", "Meraculous k-mer counting, weak scaling");
  std::printf("procs/node=%d reference bases/node=%" PRId64 " (weak scaling, k=21)\n\n",
              procs, ref_per_node);
  std::printf("%6s | %10s %10s | %8s | %12s\n", "nodes", "HCL (s)", "BCL (s)",
              "BCL/HCL", "kmers");

  double last_hcl_s = 0, last_bcl_s = 0;
  std::uint64_t last_kmers = 0;
  for (int nodes : node_counts) {
    Context::Config cfg;
    cfg.num_nodes = nodes;
    cfg.procs_per_node = procs;
    cfg.model.node_memory_budget_bytes = 512LL << 30;
    Context ctx(cfg);

    GenomeConfig g;
    g.reference_length = static_cast<std::size_t>(ref_per_node) * nodes;
    g.read_length = 100;
    g.coverage = 3.0;
    g.k = 21;
    auto genome = generate_genome(g);

    auto hcl_result = run_kmer_count_hcl(ctx, genome);
    auto bcl_result = run_kmer_count_bcl(ctx, genome);

    std::printf("%6d | %10.3f %10.3f | %7.2fx | %12" PRIu64 "\n", nodes,
                hcl_result.seconds, bcl_result.seconds,
                bcl_result.seconds / hcl_result.seconds, hcl_result.total_kmers);
    last_hcl_s = hcl_result.seconds;
    last_bcl_s = bcl_result.seconds;
    last_kmers = hcl_result.total_kmers;
  }
  write_json(
      "BENCH_FIG7_KMER.json",
      jsonf("{\"bench\": \"fig7_kmer\", \"nodes\": %d, \"procs_per_node\": %d, "
            "\"ref_per_node\": %" PRId64 ", "
            "\"hcl_seconds\": %.3f, \"bcl_seconds\": %.3f, "
            "\"bcl_hcl_ratio\": %.2f, \"kmers\": %" PRIu64 "}",
            node_counts.back(), procs, ref_per_node, last_hcl_s, last_bcl_s,
            last_bcl_s / last_hcl_s, last_kmers));
  std::printf("\npaper: HCL 2.17x faster at 8 nodes growing to 8x at 64 nodes.\n");
  print_footer();
  return 0;
}
