// Figure 8 — distributed log pseudo-indexing, weak scaling + A12 ablation.
//
// A logpi-style inverted index (token -> posting list of line offsets):
// a write-heavy batched ingest phase, then an interactive phase of
// multi-term AND/OR queries over Zipfian-skewed terms. HCL ships flushes
// through insert_batch and appends duplicate tokens with ONE server-side
// mutator invocation; queries go through find_batch. BCL pays a full
// client-side rmw (probe + CAS-lock + read + write + unlock) per posting
// chunk and a scalar find per term. Both variants index the same
// deterministic stream, so the query checksums must agree exactly.
//
// The A12 rows re-run the same workload at a small fixed topology with one
// subsystem armed at a time — read cache, heat-driven rebalancing, shm
// tier — and must converge to the baseline checksum (the subsystems buy
// time, never different answers).
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "apps/logpi.h"
#include "bench_util.h"

namespace {

hcl::apps::LogpiConfig make_config(const hcl::bench::Args& args) {
  hcl::apps::LogpiConfig config;
  config.lines_per_rank =
      static_cast<std::size_t>(args.get("--lines-per-rank", 128));
  config.tokens_per_line = static_cast<int>(args.get("--tokens-per-line", 4));
  config.vocab = static_cast<std::uint64_t>(args.get("--vocab", 4096));
  config.theta = static_cast<double>(args.get("--theta-x100", 99)) / 100.0;
  // The ingest:query mix knob — queries issued per rank against
  // lines_per_rank lines ingested per rank.
  config.queries_per_rank =
      static_cast<std::size_t>(args.get("--queries-per-rank", 64));
  config.terms_per_query = static_cast<int>(args.get("--terms", 3));
  config.flush_lines = static_cast<std::size_t>(args.get("--flush-lines", 64));
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hcl;         // NOLINT
  using namespace hcl::bench;  // NOLINT
  using namespace hcl::apps;   // NOLINT

  // Determinism contract: the BCL rmw lock dance resolves CAS rivalry in
  // real-thread order, so with >1 multiplexer worker the simulated times
  // (not the checksums) wobble run-to-run. Pin the canonical one-worker
  // schedule so BENCH_*.json is byte-stable; HCL_SIM_THREADS still wins
  // when set explicitly.
  setenv("HCL_SIM_THREADS", "1", /*overwrite=*/0);

  Args args(argc, argv);
  const bool full = args.full();
  const int procs = static_cast<int>(args.get("--procs-per-node", 4));
  // --nodes pins a single topology (paper-style headline: --nodes 64
  // --procs-per-node 40); --budget-s arms the wall-clock assert.
  const int only_nodes = static_cast<int>(args.get("--nodes", 0));
  const WallBudget budget(static_cast<double>(args.get("--budget-s", 0)));
  std::vector<int> node_counts = full ? std::vector<int>{8, 16, 32, 64}
                                      : std::vector<int>{2, 4, 8, 16};
  if (only_nodes > 0) node_counts = {only_nodes};

  const LogpiConfig config = make_config(args);

  print_header("Figure 8", "logpi inverted index: batched ingest + skewed multi-term queries");
  std::printf("procs/node=%d lines/rank=%zu queries/rank=%zu vocab=%llu "
              "theta=%.2f terms=%d (weak scaling)\n\n",
              procs, config.lines_per_rank, config.queries_per_rank,
              static_cast<unsigned long long>(config.vocab), config.theta,
              config.terms_per_query);
  std::printf("%6s | %9s %9s | %9s %9s | %7s %7s | %5s\n", "nodes",
              "ingestH", "queryH", "ingestB", "queryB", "ing B/H", "qry B/H",
              "match");

  std::int64_t failed_ops = 0;
  LogpiResult last_hcl, last_bcl;
  int last_nodes = 0;
  for (int nodes : node_counts) {
    Context::Config cfg;
    cfg.num_nodes = nodes;
    cfg.procs_per_node = procs;
    cfg.model.node_memory_budget_bytes = 512LL << 30;
    Context ctx(cfg);

    const LogpiResult h = run_logpi_hcl(ctx, config);
    const LogpiResult b = run_logpi_bcl(ctx, config);
    const bool match = h.query_checksum == b.query_checksum &&
                       h.postings == b.postings &&
                       h.distinct_tokens == b.distinct_tokens;
    failed_ops += h.failed_ops + b.failed_ops + (match ? 0 : 1);

    std::printf("%6d | %9.3f %9.3f | %9.3f %9.3f | %6.1fx %6.1fx | %5s\n",
                nodes, h.ingest_seconds, h.query_seconds, b.ingest_seconds,
                b.query_seconds, b.ingest_seconds / h.ingest_seconds,
                b.query_seconds / h.query_seconds, match ? "yes" : "NO");
    last_hcl = h;
    last_bcl = b;
    last_nodes = nodes;
    budget.check(jsonf("nodes=%d", nodes).c_str());
  }

  // --- A12: subsystem ablation rows at a fixed small topology -------------
  // One mechanism armed per row; every row must converge to the baseline
  // query checksum. Topology is fixed (4x8) so these rows are identical no
  // matter which --nodes the curve above ran at.
  struct A12Row {
    const char* name;
    double ingest_ms = 0, query_ms = 0;
    std::uint64_t checksum = 0;
    std::int64_t failed = 0;
  };
  std::vector<A12Row> rows;
  const auto a12 = [&](const char* name, bool shm_on,
                       core::ContainerOptions options) {
    Context::Config cfg;
    cfg.num_nodes = 4;
    cfg.procs_per_node = 8;
    cfg.model.node_memory_budget_bytes = 512LL << 30;
    if (shm_on) {
      cfg.shm.enabled = true;
      cfg.shm.pod_nodes = 2;
    }
    Context ctx(cfg);
    const LogpiResult r = run_logpi_hcl(ctx, config, options);
    rows.push_back({name, r.ingest_seconds * 1e3, r.query_seconds * 1e3,
                    r.query_checksum, r.failed_ops});
    budget.check(jsonf("A12 %s", name).c_str());
  };

  a12("baseline", false, {});
  {
    core::ContainerOptions o;
    o.cache.mode = cache::CacheMode::kInvalidate;
    o.cache.capacity = 4096;
    a12("cache", false, o);
  }
  {
    core::ContainerOptions o;
    o.rebalance.enabled = true;
    o.rebalance.min_ops = 256;
    o.rebalance.cooldown_ops = 256;
    a12("rebalance", false, o);
  }
  a12("shm", true, {});

  std::printf("\nA12 (4x8 fixed topology, one subsystem armed per row):\n");
  std::printf("%10s | %10s %10s | %9s\n", "variant", "ingest ms", "query ms",
              "converged");
  bool a12_converged = true;
  for (const auto& row : rows) {
    const bool ok = row.checksum == rows.front().checksum && row.failed == 0;
    a12_converged = a12_converged && ok;
    std::printf("%10s | %10.3f %10.3f | %9s\n", row.name, row.ingest_ms,
                row.query_ms, ok ? "yes" : "NO");
  }
  if (!a12_converged) ++failed_ops;

  const bool last_match = last_hcl.query_checksum == last_bcl.query_checksum;
  write_json(
      "BENCH_FIG8_LOGPI.json",
      jsonf("{\"bench\": \"fig8_logpi\", \"nodes\": %d, \"procs_per_node\": %d, "
            "\"lines_per_rank\": %zu, \"queries_per_rank\": %zu, "
            "\"vocab\": %llu, \"theta_x100\": %d, \"failed_ops\": %" PRId64 ", "
            "\"hcl_ingest_seconds\": %.3f, \"hcl_query_seconds\": %.3f, "
            "\"bcl_ingest_seconds\": %.3f, \"bcl_query_seconds\": %.3f, "
            "\"ingest_bcl_hcl_ratio\": %.2f, \"query_bcl_hcl_ratio\": %.2f, "
            "\"batch_inserted\": %llu, \"appends\": %llu, "
            "\"distinct_tokens\": %llu, \"query_hits\": %llu, "
            "\"query_checksum\": %llu, \"checksum_match\": %s}",
            last_nodes, procs, config.lines_per_rank, config.queries_per_rank,
            static_cast<unsigned long long>(config.vocab),
            static_cast<int>(config.theta * 100.0 + 0.5), failed_ops,
            last_hcl.ingest_seconds, last_hcl.query_seconds,
            last_bcl.ingest_seconds, last_bcl.query_seconds,
            last_bcl.ingest_seconds / last_hcl.ingest_seconds,
            last_bcl.query_seconds / last_hcl.query_seconds,
            static_cast<unsigned long long>(last_hcl.batch_inserted),
            static_cast<unsigned long long>(last_hcl.appends),
            static_cast<unsigned long long>(last_hcl.distinct_tokens),
            static_cast<unsigned long long>(last_hcl.query_hits),
            static_cast<unsigned long long>(last_hcl.query_checksum),
            last_match ? "true" : "false"));
  write_json(
      "BENCH_A12.json",
      jsonf("{\"ablation\": \"A12\", \"app\": \"logpi\", \"nodes\": 4, "
            "\"procs_per_node\": 8, "
            "\"baseline_ingest_ms\": %.3f, \"baseline_query_ms\": %.3f, "
            "\"cache_ingest_ms\": %.3f, \"cache_query_ms\": %.3f, "
            "\"rebalance_ingest_ms\": %.3f, \"rebalance_query_ms\": %.3f, "
            "\"shm_ingest_ms\": %.3f, \"shm_query_ms\": %.3f, "
            "\"cache_query_speedup\": %.2f, \"shm_ingest_speedup\": %.2f, "
            "\"converged\": %s}",
            rows[0].ingest_ms, rows[0].query_ms, rows[1].ingest_ms,
            rows[1].query_ms, rows[2].ingest_ms, rows[2].query_ms,
            rows[3].ingest_ms, rows[3].query_ms,
            rows[0].query_ms / rows[1].query_ms,
            rows[0].ingest_ms / rows[3].ingest_ms,
            a12_converged ? "true" : "false"));

  std::printf("wall: %.1f s%s\n", budget.elapsed_s(),
              budget.budget_s() > 0
                  ? jsonf(" (budget %.0f s)", budget.budget_s()).c_str()
                  : "");
  std::printf("\nHCL amortizes the flush (one insert_batch per %zu lines, one\n"
              "server-side mutator per duplicate token) and batches query terms;\n"
              "BCL pays a client-side lock dance per posting chunk and a round\n"
              "trip per term.\n",
              config.flush_lines);
  hcl::bench::print_footer();
  return 0;
}
