// Figure 9 — MetallGraph-style graph store: transactional edge ingest,
// degree queries, k-hop BFS; weak scaling + hop-depth sweep + A13 ablation.
//
// Vertices and adjacency live in two sharded containers. HCL bulk-upserts
// vertices through the atomic multi_put shape, streams edges into per-node
// queue lanes, and drains them in small batches — one cross-container
// transaction per batch (pops + both endpoints' adjacency RMWs — never a
// half-inserted edge);
// traversal reads adjacency frontier-by-frontier through find_batch. BCL
// appends each endpoint with an independent client-side rmw lock dance and
// traverses with scalar finds. Both build the same adjacency multiset, so
// the BFS and degree checksums must agree exactly.
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "apps/graph_store.h"
#include "bench_util.h"

namespace {

hcl::apps::GraphConfig make_config(const hcl::bench::Args& args, int ranks) {
  hcl::apps::GraphConfig config;
  config.vertices = static_cast<std::uint64_t>(
                        args.get("--verts-per-rank", 32)) *
                    static_cast<std::uint64_t>(ranks);
  config.avg_degree =
      static_cast<double>(args.get("--avg-degree", 6));
  config.khop = static_cast<int>(args.get("--khop", 2));
  config.bfs_sources = static_cast<int>(args.get("--bfs-sources", 8));
  config.degree_samples =
      static_cast<std::size_t>(args.get("--degree-samples", 32));
  config.drainers_per_node =
      static_cast<int>(args.get("--drainers-per-node", 1));
  config.edges_per_txn =
      static_cast<std::size_t>(args.get("--edges-per-txn", 1));
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hcl;         // NOLINT
  using namespace hcl::bench;  // NOLINT
  using namespace hcl::apps;   // NOLINT

  // Determinism contract: OCC epoch validation (and the BCL CAS dance)
  // resolves same-instant rivals in real-thread order, so with >1
  // multiplexer worker the abort counts and simulated times (not the
  // checksums) wobble run-to-run. Pin the canonical one-worker schedule
  // so BENCH_*.json is byte-stable; HCL_SIM_THREADS still wins when set
  // explicitly.
  setenv("HCL_SIM_THREADS", "1", /*overwrite=*/0);

  Args args(argc, argv);
  const bool full = args.full();
  const int procs = static_cast<int>(args.get("--procs-per-node", 4));
  // --nodes pins a single topology (paper-style headline: --nodes 64
  // --procs-per-node 40); --budget-s arms the wall-clock assert.
  const int only_nodes = static_cast<int>(args.get("--nodes", 0));
  const WallBudget budget(static_cast<double>(args.get("--budget-s", 0)));
  std::vector<int> node_counts = full ? std::vector<int>{8, 16, 32, 64}
                                      : std::vector<int>{2, 4, 8, 16};
  if (only_nodes > 0) node_counts = {only_nodes};

  print_header("Figure 9",
               "graph store: txn edge ingest, degree queries, k-hop BFS");
  std::printf("procs/node=%d verts/rank=%" PRId64 " avg-degree=%" PRId64
              " khop=%" PRId64 " (weak scaling)\n\n",
              procs, args.get("--verts-per-rank", 32),
              args.get("--avg-degree", 6), args.get("--khop", 2));
  std::printf("%6s | %9s %9s | %9s %9s | %7s %7s | %5s\n", "nodes", "buildH",
              "queryH(ms)", "buildB", "queryB(ms)", "bld B/H", "qry B/H",
              "match");

  std::int64_t failed_ops = 0;
  GraphResult last_hcl, last_bcl;
  int last_nodes = 0;
  for (int nodes : node_counts) {
    Context::Config cfg;
    cfg.num_nodes = nodes;
    cfg.procs_per_node = procs;
    cfg.model.node_memory_budget_bytes = 512LL << 30;
    Context ctx(cfg);

    const GraphConfig config = make_config(args, nodes * procs);
    const GraphResult h = run_graph_hcl(ctx, config);
    const GraphResult b = run_graph_bcl(ctx, config);
    const bool match = h.bfs_checksum == b.bfs_checksum &&
                       h.degree_checksum == b.degree_checksum &&
                       h.transferred == h.edges;
    failed_ops += h.failed_ops + b.failed_ops + (match ? 0 : 1);

    std::printf("%6d | %9.3f %9.3f | %9.3f %9.3f | %6.1fx %6.1fx | %5s\n",
                nodes, h.build_seconds, h.query_seconds * 1e3, b.build_seconds,
                b.query_seconds * 1e3, b.build_seconds / h.build_seconds,
                b.query_seconds / h.query_seconds, match ? "yes" : "NO");
    last_hcl = h;
    last_bcl = b;
    last_nodes = nodes;
    budget.check(jsonf("nodes=%d", nodes).c_str());
  }

  // --- Hop-depth sweep at a fixed small topology ---------------------------
  // Deeper traversals grow the frontier, so HCL's find_batch amortization
  // widens against BCL's per-vertex round trips.
  std::printf("\nhop-depth sweep (4x8 fixed topology):\n");
  std::printf("%5s | %9s %9s | %7s | %8s\n", "khop", "queryH(ms)",
              "queryB(ms)", "qry B/H", "reached");
  for (int khop : {1, 2, 3}) {
    Context::Config cfg;
    cfg.num_nodes = 4;
    cfg.procs_per_node = 8;
    cfg.model.node_memory_budget_bytes = 512LL << 30;
    Context ctx(cfg);
    GraphConfig config = make_config(args, 32);
    config.khop = khop;
    const GraphResult h = run_graph_hcl(ctx, config);
    const GraphResult b = run_graph_bcl(ctx, config);
    const bool match = h.bfs_checksum == b.bfs_checksum;
    failed_ops += h.failed_ops + b.failed_ops + (match ? 0 : 1);
    std::printf("%5d | %9.3f %9.3f | %6.1fx | %8llu%s\n", khop,
                h.query_seconds * 1e3, b.query_seconds * 1e3,
                b.query_seconds / h.query_seconds,
                static_cast<unsigned long long>(h.bfs_reached),
                match ? "" : "  MISMATCH");
    budget.check(jsonf("khop=%d", khop).c_str());
  }

  // --- A13: subsystem ablation rows at a fixed small topology --------------
  struct A13Row {
    const char* name;
    double build_ms = 0, query_ms = 0;
    std::uint64_t bfs_checksum = 0, degree_checksum = 0, transferred = 0,
                  edges = 0;
    std::int64_t failed = 0;
  };
  std::vector<A13Row> rows;
  const auto a13 = [&](const char* name, bool shm_on,
                       core::ContainerOptions options) {
    Context::Config cfg;
    cfg.num_nodes = 4;
    cfg.procs_per_node = 8;
    cfg.model.node_memory_budget_bytes = 512LL << 30;
    if (shm_on) {
      cfg.shm.enabled = true;
      cfg.shm.pod_nodes = 2;
    }
    Context ctx(cfg);
    const GraphResult r = run_graph_hcl(ctx, make_config(args, 32), options);
    rows.push_back({name, r.build_seconds * 1e3, r.query_seconds * 1e3,
                    r.bfs_checksum, r.degree_checksum, r.transferred, r.edges,
                    r.failed_ops});
    budget.check(jsonf("A13 %s", name).c_str());
  };

  a13("baseline", false, {});
  {
    core::ContainerOptions o;
    o.cache.mode = cache::CacheMode::kInvalidate;
    o.cache.capacity = 4096;
    a13("cache", false, o);
  }
  {
    core::ContainerOptions o;
    o.rebalance.enabled = true;
    o.rebalance.min_ops = 256;
    o.rebalance.cooldown_ops = 256;
    a13("rebalance", false, o);
  }
  a13("shm", true, {});

  std::printf("\nA13 (4x8 fixed topology, one subsystem armed per row):\n");
  std::printf("%10s | %10s %10s | %11s %6s | %9s\n", "variant", "build ms",
              "query ms", "moved", "failed", "converged");
  bool a13_converged = true;
  for (const auto& row : rows) {
    const bool ok = row.bfs_checksum == rows.front().bfs_checksum &&
                    row.degree_checksum == rows.front().degree_checksum &&
                    row.transferred == row.edges && row.failed == 0;
    a13_converged = a13_converged && ok;
    std::printf("%10s | %10.3f %10.3f | %5llu/%-5llu %6" PRId64 " | %9s\n",
                row.name, row.build_ms, row.query_ms,
                static_cast<unsigned long long>(row.transferred),
                static_cast<unsigned long long>(row.edges), row.failed,
                ok ? "yes" : "NO");
  }
  if (!a13_converged) ++failed_ops;

  const bool last_match = last_hcl.bfs_checksum == last_bcl.bfs_checksum;
  write_json(
      "BENCH_FIG9_GRAPH.json",
      jsonf("{\"bench\": \"fig9_graph\", \"nodes\": %d, \"procs_per_node\": %d, "
            "\"vertices\": %llu, \"edges\": %llu, \"khop\": %d, "
            "\"failed_ops\": %" PRId64 ", "
            "\"hcl_build_seconds\": %.3f, \"hcl_query_ms\": %.3f, "
            "\"bcl_build_seconds\": %.3f, \"bcl_query_ms\": %.3f, "
            "\"build_bcl_hcl_ratio\": %.2f, \"query_bcl_hcl_ratio\": %.2f, "
            "\"transferred\": %llu, \"bfs_reached\": %llu, "
            "\"bfs_checksum\": %llu, \"txn_commits\": %" PRId64 ", "
            "\"txn_aborts\": %" PRId64 ", \"checksum_match\": %s}",
            last_nodes, procs,
            static_cast<unsigned long long>(last_hcl.vertices),
            static_cast<unsigned long long>(last_hcl.edges),
            static_cast<int>(args.get("--khop", 2)), failed_ops,
            last_hcl.build_seconds, last_hcl.query_seconds * 1e3,
            last_bcl.build_seconds, last_bcl.query_seconds * 1e3,
            last_bcl.build_seconds / last_hcl.build_seconds,
            last_bcl.query_seconds / last_hcl.query_seconds,
            static_cast<unsigned long long>(last_hcl.transferred),
            static_cast<unsigned long long>(last_hcl.bfs_reached),
            static_cast<unsigned long long>(last_hcl.bfs_checksum),
            last_hcl.txn_commits, last_hcl.txn_aborts,
            last_match ? "true" : "false"));
  write_json(
      "BENCH_A13.json",
      jsonf("{\"ablation\": \"A13\", \"app\": \"graph_store\", \"nodes\": 4, "
            "\"procs_per_node\": 8, "
            "\"baseline_build_ms\": %.3f, \"baseline_query_ms\": %.3f, "
            "\"cache_build_ms\": %.3f, \"cache_query_ms\": %.3f, "
            "\"rebalance_build_ms\": %.3f, \"rebalance_query_ms\": %.3f, "
            "\"shm_build_ms\": %.3f, \"shm_query_ms\": %.3f, "
            "\"cache_query_speedup\": %.2f, \"shm_build_speedup\": %.2f, "
            "\"converged\": %s}",
            rows[0].build_ms, rows[0].query_ms, rows[1].build_ms,
            rows[1].query_ms, rows[2].build_ms, rows[2].query_ms,
            rows[3].build_ms, rows[3].query_ms,
            rows[0].query_ms / rows[1].query_ms,
            rows[0].build_ms / rows[3].build_ms,
            a13_converged ? "true" : "false"));

  std::printf("wall: %.1f s%s\n", budget.elapsed_s(),
              budget.budget_s() > 0
                  ? jsonf(" (budget %.0f s)", budget.budget_s()).c_str()
                  : "");
  std::printf("\nHCL drains edges in atomic pop+RMW transaction batches and batches\n"
              "BFS frontiers; BCL pays two independent lock dances per edge (no\n"
              "cross-endpoint atomicity) and a round trip per vertex.\n");
  hcl::bench::print_footer();
  return 0;
}
