// Ablations of HCL's design choices (DESIGN.md §5) — each toggles one
// mechanism the paper credits for performance and measures the cost of
// losing it.
//
//   A1. Hybrid data access model (§III.C.5): node-local ops via direct
//       shared memory vs. forcing them through the RPC loopback.
//   A2. Server-side callback chaining (§III.C.3): K dependent operations in
//       ONE invocation vs. K separate round trips.
//   A3. Bulk queue operations (Table I): one invocation for E elements vs.
//       E invocations.
//   A4. Asynchronous futures (§III.C.4): pipelined async_insert vs.
//       synchronous inserts.
//   A5. Fault injection & retry policy: what arming the reliability layer
//       costs when the fabric is clean, and what a lossy fabric costs when
//       bounded retries absorb the faults.
//   A6. Op coalescing (§III.C, Table I bulk rows): remote inserts shipped
//       through the client-side batcher (one RDMA_SEND per bundle, one
//       packed response, per-op dispatch amortized) vs. unbatched
//       one-insert-per-invocation, at small value sizes where per-op
//       overhead dominates the wire bytes.
//   A7. Client-side read cache (DESIGN.md §5d): a Zipfian read-heavy
//       workload against a remote partition with the epoch-lease cache on
//       vs. off (hits are charged local check+hit time instead of a fabric
//       round trip), plus the uniform write-heavy control where every write
//       bumps the partition epoch and the cache cannot help.
//   A8. Availability under a server kill (DESIGN.md §5f): one server dies
//       mid-run and rejoins at the 3/4 mark. With replication=1 every op in
//       the outage window completes through the promoted standby (zero
//       failed ops, bounded per-op dip); with replication=0 the same window
//       resolves every op as kUnavailable. Cache-on variant shows the fence
//       epoch staling leases without serving stale data.
//   A9. Heat-driven shard split (DESIGN.md §5g): a Zipfian (theta=0.99)
//       stream funneled through one partition's host, with a mid-run
//       split() peeling the hot slots off to the coldest partition. Static
//       placement bottlenecks one server NIC; the split spreads it. Run
//       cache-off and cache-on; the migration window must lose zero ops and
//       both variants must converge byte-for-byte.
//   A11. Shared-memory transport tier (DESIGN.md §5i): small pod-local echo
//       ops through the shm ring (doorbell + consumer-lane dispatch +
//       local-memory byte time) vs the same ops over the RDMA scalar path
//       (wire overhead + base latency + NIC dispatch + 3x-latency pull).
//       The tier's per-op floor must sit >=3x below the wire's.
//
// A6-A11 additionally drop BENCH_A<k>.json next to the binary so CI can diff
// the perf trajectory across commits (ROADMAP item 5).
//
// JSON determinism contract: simulated time is integer nanoseconds, but the
// reservation order of real threads can wobble a makespan by a few ns
// run-to-run. Every emitted float is therefore rounded COARSER than that
// noise floor (ms to microsecond precision, ratios to two decimals, op
// rates to integers), seeds are the Config defaults, and field order is
// fixed by the format strings — so a BENCH_A*.json only changes when the
// cost model or mechanism under test actually changes.
#include <atomic>
#include <cstdarg>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "rpc/engine.h"
#include "txn/txn.h"

namespace {

using namespace hcl;         // NOLINT
using namespace hcl::bench;  // NOLINT

// write_json / jsonf live in bench_util.h now that every figure bench emits
// a BENCH_*.json record under the same determinism contract.

}  // namespace

int main(int argc, char** argv) {
  Args args(argc, argv);
  const int clients = static_cast<int>(args.get("--clients", 16));
  const auto ops = args.get("--ops", 512);

  print_header("Ablations", "what each HCL design choice buys");
  std::printf("clients=%d ops/client=%" PRId64 "\n\n", clients, ops);

  // --- A1: hybrid access model -------------------------------------------
  {
    Context ctx({.num_nodes = 1, .procs_per_node = clients});
    auto& engine = ctx.rpc();
    const auto insert_like = engine.bind<bool, Blob>(
        [&](rpc::ServerCtx& sctx, const Blob& b) {
          sctx.finish = ctx.fabric().local_write(
              sctx.node, sctx.start + ctx.model().mem_insert_base_ns,
              static_cast<std::int64_t>(b.nominal));
          return true;
        });
    // Hybrid ON: direct shared-memory op.
    ctx.reset_measurement();
    ctx.run([&](sim::Actor& self) {
      for (std::int64_t i = 0; i < ops; ++i) {
        self.advance(ctx.model().mem_insert_base_ns);
        self.advance_to(ctx.fabric().local_write(self.node(), self.now(), 4096));
      }
    });
    const double with_hybrid = ctx.elapsed_seconds();
    // Hybrid OFF: same op shipped through the RPC loopback.
    ctx.reset_measurement();
    ctx.run([&](sim::Actor& self) {
      for (std::int64_t i = 0; i < ops; ++i) {
        (void)engine.invoke<bool>(self, 0, insert_like, Blob{4096});
      }
    });
    const double without_hybrid = ctx.elapsed_seconds();
    std::printf("A1 hybrid access model   : local-direct %.3f ms vs RPC-loopback %.3f ms -> %.1fx\n",
                with_hybrid * 1e3, without_hybrid * 1e3,
                without_hybrid / with_hybrid);
  }

  // --- A2: callback chaining ----------------------------------------------
  {
    Context ctx({.num_nodes = 2, .procs_per_node = clients});
    auto& engine = ctx.rpc();
    const auto stage = engine.bind_raw(
        [&](rpc::ServerCtx& sctx, std::span<const std::byte> prev) {
          sctx.finish = ctx.fabric().local_write(
              sctx.node, sctx.start + ctx.model().mem_insert_base_ns, 512);
          return std::vector<std::byte>(prev.begin(), prev.end());
        });
    constexpr int kStages = 4;
    ctx.reset_measurement();
    ctx.run([&](sim::Actor& self) {
      if (self.node() != 0) return;
      for (std::int64_t i = 0; i < ops; ++i) {
        (void)engine.invoke_chain<std::vector<std::byte>>(
            self, 1, stage, {stage, stage, stage}, std::vector<std::byte>(64));
      }
    });
    const double chained = ctx.elapsed_seconds();
    ctx.reset_measurement();
    ctx.run([&](sim::Actor& self) {
      if (self.node() != 0) return;
      for (std::int64_t i = 0; i < ops; ++i) {
        std::vector<std::byte> payload(64);
        for (int s = 0; s < kStages; ++s) {
          payload = engine.invoke<std::vector<std::byte>>(self, 1, stage, payload);
        }
      }
    });
    const double separate = ctx.elapsed_seconds();
    std::printf("A2 callback chaining (%d stages): one call %.3f ms vs %d round trips %.3f ms -> %.1fx\n",
                kStages, chained * 1e3, kStages, separate * 1e3,
                separate / chained);
  }

  // --- A3: bulk queue ops --------------------------------------------------
  {
    Context ctx({.num_nodes = 2, .procs_per_node = clients});
    queue<std::uint64_t> q(ctx, [] {
      core::ContainerOptions o;
      o.first_node = 1;
      return o;
    }());
    constexpr std::size_t kBatch = 32;
    ctx.reset_measurement();
    ctx.run([&](sim::Actor& self) {
      if (self.node() != 0) return;
      std::vector<std::uint64_t> batch(kBatch, 7);
      for (std::int64_t i = 0; i < ops / static_cast<std::int64_t>(kBatch); ++i) {
        q.push(batch);
      }
    });
    const double bulk = ctx.elapsed_seconds();
    ctx.reset_measurement();
    ctx.run([&](sim::Actor& self) {
      if (self.node() != 0) return;
      for (std::int64_t i = 0; i < ops; ++i) q.push(std::uint64_t{7});
    });
    const double single = ctx.elapsed_seconds();
    std::printf("A3 bulk push (E=%zu)      : bulk %.3f ms vs per-element %.3f ms -> %.1fx\n",
                kBatch, bulk * 1e3, single * 1e3, single / bulk);
  }

  // --- A4: asynchronous futures --------------------------------------------
  {
    Context ctx({.num_nodes = 2, .procs_per_node = clients});
    unordered_map<std::uint64_t, std::uint64_t> m(ctx, [] {
      core::ContainerOptions o;
      o.num_partitions = 1;
      o.first_node = 1;
      return o;
    }());
    ctx.reset_measurement();
    ctx.run([&](sim::Actor& self) {
      if (self.node() != 0) return;
      std::vector<rpc::Future<bool>> inflight;
      inflight.reserve(static_cast<std::size_t>(ops));
      for (std::int64_t i = 0; i < ops; ++i) {
        inflight.push_back(m.async_insert(
            static_cast<std::uint64_t>(self.rank()) * ops + i, 1));
      }
      for (auto& f : inflight) (void)f.get(self);
    });
    const double async_s = ctx.elapsed_seconds();
    ctx.reset_measurement();
    ctx.run([&](sim::Actor& self) {
      if (self.node() != 0) return;
      for (std::int64_t i = 0; i < ops; ++i) {
        m.insert(static_cast<std::uint64_t>(self.rank() + 1000) * ops + i, 1);
      }
    });
    const double sync_s = ctx.elapsed_seconds();
    std::printf("A4 async futures          : pipelined %.3f ms vs synchronous %.3f ms -> %.1fx\n",
                async_s * 1e3, sync_s * 1e3, sync_s / async_s);
  }

  // --- A5: fault injection & retry policy ----------------------------------
  {
    Context ctx({.num_nodes = 2, .procs_per_node = clients});
    auto& engine = ctx.rpc();
    const auto echo = engine.bind<std::uint64_t, std::uint64_t>(
        [](rpc::ServerCtx&, const std::uint64_t& v) { return v; });
    rpc::InvokeOptions policy;
    policy.timeout_ns = 2 * sim::kMillisecond;
    policy.max_retries = 3;
    const auto storm = [&](const rpc::InvokeOptions& opts) {
      ctx.reset_measurement();
      ctx.run([&](sim::Actor& self) {
        if (self.node() != 0) return;
        for (std::int64_t i = 0; i < ops; ++i) {
          try {
            (void)engine.invoke_opt<std::uint64_t>(
                self, 1, echo, opts, static_cast<std::uint64_t>(i));
          } catch (const HclError&) {
            // Retries exhausted: the op resolved with a definite error.
          }
        }
      });
      return ctx.elapsed_seconds();
    };
    const double clean = storm(rpc::InvokeOptions{});
    const double armed = storm(policy);  // policy on, fabric still clean
    auto plan = std::make_shared<fabric::FaultPlan>(7);
    fabric::FaultProbabilities p;
    p.drop = 0.02;
    p.delay = 0.05;
    p.delay_ns = 30 * sim::kMicrosecond;
    p.unavailable = 0.03;
    plan->set(fabric::OpClass::kRpc, p);
    ctx.set_fault_plan(plan);
    const double lossy = storm(policy);
    const auto retries =
        ctx.fabric().nic(1).counters().rpc_retries.load(std::memory_order_relaxed);
    ctx.set_fault_plan(nullptr);
    std::printf("A5 fault injection/retry  : clean %.3f ms, policy-armed %.3f ms (%.2fx), "
                "lossy fabric %.3f ms (%.2fx, %" PRId64 " faults -> %" PRId64 " retries)\n",
                clean * 1e3, armed * 1e3, armed / clean, lossy * 1e3,
                lossy / clean, plan->counters().total(), retries);
  }

  // --- A6: op coalescing (batched vs unbatched remote inserts) -------------
  {
    Context ctx({.num_nodes = 2, .procs_per_node = clients});
    unordered_map<std::uint64_t, std::uint64_t> m(ctx, [] {
      core::ContainerOptions o;
      o.num_partitions = 1;
      o.first_node = 1;  // every client insert is remote
      o.batch.max_ops = 32;
      o.batch.max_delay_ns = 0;
      return o;
    }());
    ctx.reset_measurement();
    ctx.run([&](sim::Actor& self) {
      if (self.node() != 0) return;
      std::vector<std::uint64_t> keys, values;
      for (std::int64_t i = 0; i < ops; ++i) {
        keys.push_back(static_cast<std::uint64_t>(self.rank()) * ops + i);
        values.push_back(1);
      }
      (void)m.insert_batch(keys, values);
    });
    const double batched = ctx.elapsed_seconds();
    const auto bundles =
        ctx.fabric().nic(1).counters().rpc_batches.load(std::memory_order_relaxed);
    ctx.reset_measurement();
    ctx.run([&](sim::Actor& self) {
      if (self.node() != 0) return;
      for (std::int64_t i = 0; i < ops; ++i) {
        m.insert(static_cast<std::uint64_t>(self.rank() + 1000) * ops + i, 1);
      }
    });
    const double scalar = ctx.elapsed_seconds();
    std::printf("A6 op coalescing (E=%zu)  : batched %.3f ms (%" PRId64 " bundles) vs "
                "unbatched %.3f ms -> %.1fx\n",
                std::size_t{32}, batched * 1e3, bundles, scalar * 1e3,
                scalar / batched);
    const double total_ops = static_cast<double>(ops) * clients;
    write_json(
        "BENCH_A6.json",
        jsonf("{\"ablation\": \"A6\", \"batched_ms\": %.3f, "
              "\"unbatched_ms\": %.3f, \"speedup\": %.2f, "
              "\"bundles\": %" PRId64 ", \"batched_ops_per_sec\": %.0f, "
              "\"unbatched_ops_per_sec\": %.0f}",
              batched * 1e3, scalar * 1e3, scalar / batched, bundles,
              total_ops / batched, total_ops / scalar));
  }

  // --- A7: client-side read cache (DESIGN.md §5d) ---------------------------
  {
    // Small warm keyspace, long read stream: the steady state is what the
    // cache accelerates; cold-miss fill is a one-time cost the stream
    // amortizes (YCSB-C runs orders of magnitude more ops than keys).
    constexpr std::uint64_t kKeys = 1024;
    const std::int64_t cache_ops = 2 * ops;
    auto make_opts = [&](bool cached) {
      core::ContainerOptions o;
      o.num_partitions = 1;
      o.first_node = 1;  // every client op is remote — the cacheable path
      if (cached) {
        o.cache.mode = cache::CacheMode::kInvalidate;
        o.cache.ttl_ns = 10 * sim::kMillisecond;
        o.cache.capacity = kKeys;
      } else {
        o.cache.mode = cache::CacheMode::kOff;
      }
      return o;
    };
    auto populate = [&](Context& ctx, auto& m) {
      ctx.run_one(0, [&](sim::Actor&) {
        for (std::uint64_t k = 0; k < kKeys; ++k) (void)m.upsert(k, k);
      });
    };
    // Read-heavy: Zipfian (theta=0.99, YCSB-C-style) reads of a warm
    // keyspace. Hot keys repeat, so a lease-valid entry answers most reads.
    auto zipf_reads = [&](Context& ctx, auto& m) {
      ctx.reset_measurement();
      ctx.run([&](sim::Actor& self) {
        if (self.node() != 0) return;
        Rng rng(static_cast<std::uint64_t>(self.rank()) + 1);
        ZipfGen zipf(kKeys, 0.99, rng);
        std::uint64_t v = 0;
        for (std::int64_t i = 0; i < cache_ops; ++i) {
          (void)m.find(zipf.next_scrambled(), &v);
        }
      });
      return ctx.elapsed_seconds();
    };
    // Write-heavy control: uniform 50/50 upsert/find. Every write bumps the
    // partition epoch, so cached entries go stale about as fast as they are
    // filled — the cache must cost (nearly) nothing here, not help.
    auto uniform_rw = [&](Context& ctx, auto& m) {
      ctx.reset_measurement();
      ctx.run([&](sim::Actor& self) {
        if (self.node() != 0) return;
        Rng rng(static_cast<std::uint64_t>(self.rank()) + 101);
        std::uint64_t v = 0;
        for (std::int64_t i = 0; i < cache_ops; ++i) {
          const auto k = rng.next_below(kKeys);
          if (i % 2 == 0) {
            (void)m.upsert(k, k + 1);
          } else {
            (void)m.find(k, &v);
          }
        }
      });
      return ctx.elapsed_seconds();
    };

    double zipf_off = 0, zipf_on = 0, rw_off = 0, rw_on = 0;
    cache::CacheStats zipf_stats{}, rw_stats{};
    for (const bool cached : {false, true}) {
      Context ctx({.num_nodes = 2, .procs_per_node = clients});
      unordered_map<std::uint64_t, std::uint64_t> m(ctx, make_opts(cached));
      populate(ctx, m);
      const double secs = zipf_reads(ctx, m);
      (cached ? zipf_on : zipf_off) = secs;
      if (cached) zipf_stats = m.cache_stats();
    }
    for (const bool cached : {false, true}) {
      Context ctx({.num_nodes = 2, .procs_per_node = clients});
      unordered_map<std::uint64_t, std::uint64_t> m(ctx, make_opts(cached));
      populate(ctx, m);
      const double secs = uniform_rw(ctx, m);
      (cached ? rw_on : rw_off) = secs;
      if (cached) rw_stats = m.cache_stats();
    }
    const auto hit_rate = [](const cache::CacheStats& s) {
      const auto consults = s.hits + s.misses;
      return consults > 0 ? 100.0 * static_cast<double>(s.hits) /
                                static_cast<double>(consults)
                          : 0.0;
    };
    std::printf("A7 read cache (zipf .99)  : cached %.3f ms vs uncached %.3f ms -> %.1fx "
                "(hit rate %.1f%%, %" PRId64 " hits / %" PRId64 " misses / %" PRId64
                " stale)\n",
                zipf_on * 1e3, zipf_off * 1e3, zipf_off / zipf_on,
                hit_rate(zipf_stats), zipf_stats.hits, zipf_stats.misses,
                zipf_stats.stale_reads);
    std::printf("A7 control (uniform 50%%w) : cached %.3f ms vs uncached %.3f ms -> %.2fx "
                "(hit rate %.1f%%, %" PRId64 " invalidations)\n",
                rw_on * 1e3, rw_off * 1e3, rw_off / rw_on, hit_rate(rw_stats),
                rw_stats.invalidations);
    const double total_ops = static_cast<double>(cache_ops) * clients;
    write_json(
        "BENCH_A7.json",
        jsonf("{\"ablation\": \"A7\", \"zipf_cached_ms\": %.3f, "
              "\"zipf_uncached_ms\": %.3f, \"zipf_speedup\": %.2f, "
              "\"zipf_hit_rate_pct\": %.1f, \"zipf_ops_per_sec\": %.0f, "
              "\"stale_reads\": %" PRId64 ", \"control_cached_ms\": %.3f, "
              "\"control_uncached_ms\": %.3f, \"control_speedup\": %.2f, "
              "\"invalidations\": %" PRId64 "}",
              zipf_on * 1e3, zipf_off * 1e3, zipf_off / zipf_on,
              hit_rate(zipf_stats), total_ops / zipf_on,
              zipf_stats.stale_reads, rw_on * 1e3, rw_off * 1e3, rw_off / rw_on,
              rw_stats.invalidations));
  }

  // --- A8: availability under a server kill (DESIGN.md §5f) -----------------
  {
    // Three phases of the same mixed workload against a partition hosted on
    // node 1: pre-kill (healthy), outage (node 1 down), post-rejoin (healed).
    // Clients live on node 0; the standby replica partition lives on node 2.
    constexpr std::uint64_t kKeys = 256;
    struct A8Result {
      double pre_ms = 0, down_ms = 0, post_ms = 0;
      std::int64_t failed = 0, failovers = 0, repairs = 0;
    };
    auto run_variant = [&](int replication, bool cached) {
      A8Result r;
      auto plan = std::make_shared<fabric::FaultPlan>(23);
      Context ctx({.num_nodes = 3, .procs_per_node = clients});
      ctx.set_fault_plan(plan);
      unordered_map<std::uint64_t, std::uint64_t> m(ctx, [&] {
        core::ContainerOptions o;
        o.num_partitions = 3;  // partition p lives on node p
        o.replication = replication;
        if (cached) {
          o.cache.mode = cache::CacheMode::kInvalidate;
          o.cache.ttl_ns = 10 * sim::kMillisecond;
          o.cache.capacity = kKeys;
        }
        return o;
      }());
      // Every client op targets keys of partition 1 — the one we will kill.
      std::vector<std::uint64_t> keys;
      for (std::uint64_t k = 0; keys.size() < kKeys; ++k) {
        if (m.partition_of(k) == 1) keys.push_back(k);
      }
      ctx.run_one(0, [&](sim::Actor&) {
        for (const auto k : keys) (void)m.upsert(k, k);
      });
      std::atomic<std::int64_t> failed{0};
      auto phase = [&](std::int64_t n) {
        ctx.reset_measurement();
        ctx.run([&](sim::Actor& self) {
          if (self.node() != 0) return;
          Rng rng(static_cast<std::uint64_t>(self.rank()) + 7);
          std::uint64_t v = 0;
          for (std::int64_t i = 0; i < n; ++i) {
            const auto k = keys[rng.next_below(kKeys)];
            try {
              if (i % 2 == 0) {
                (void)m.upsert(k, k + 1);
              } else {
                (void)m.find(k, &v);
              }
            } catch (const HclError&) {
              failed.fetch_add(1, std::memory_order_relaxed);
            }
          }
        });
        return ctx.elapsed_seconds() * 1e3;
      };
      r.pre_ms = phase(ops);
      plan->fail_node(1);
      r.down_ms = phase(ops / 2);
      // reset_measurement() zeroes NIC counters, so snapshot the outage's
      // failovers (standby = partition 2's node) and the heal's repaired
      // record count (primary = node 1) before the recovery phase runs.
      r.failovers = ctx.fabric().nic(2).counters().failovers.load(
          std::memory_order_relaxed);
      plan->rejoin_node(1);
      ctx.run_one(0, [&](sim::Actor& self) { m.heal(self); });
      r.repairs = ctx.fabric().nic(1).counters().repair_ops.load(
          std::memory_order_relaxed);
      r.post_ms = phase(ops / 2);
      r.failed = failed.load(std::memory_order_relaxed);
      return r;
    };
    const A8Result off = run_variant(1, false);
    const A8Result on = run_variant(1, true);
    const A8Result bare = run_variant(0, false);
    // Per-op cost (the outage/recovery phases run half as many ops).
    const auto per_op = [&](double ms, std::int64_t n) {
      return ms * 1e3 / static_cast<double>(n * clients);
    };
    auto print_line = [&](const char* tag, const A8Result& r) {
      std::printf("A8 %-23s: pre %.3f us/op, outage %.3f us/op (%.2fx), "
                  "recovered %.3f us/op, %" PRId64 " failed ops, %" PRId64
                  " failovers, %" PRId64 " repaired\n",
                  tag, per_op(r.pre_ms, ops), per_op(r.down_ms, ops / 2),
                  per_op(r.down_ms, ops / 2) / per_op(r.pre_ms, ops),
                  per_op(r.post_ms, ops / 2), r.failed, r.failovers, r.repairs);
    };
    print_line("kill/rejoin (repl=1)", off);
    print_line("kill/rejoin (+cache)", on);
    print_line("kill, no replication", bare);
    auto variant_json = [&](const char* tag, const A8Result& r) {
      return jsonf("\"%s\": {\"pre_us_per_op\": %.2f, "
                   "\"outage_us_per_op\": %.2f, \"post_us_per_op\": %.2f, "
                   "\"failed_ops\": %" PRId64 ", \"failovers\": %" PRId64
                   ", \"repaired\": %" PRId64 "}",
                   tag, per_op(r.pre_ms, ops), per_op(r.down_ms, ops / 2),
                   per_op(r.post_ms, ops / 2), r.failed, r.failovers,
                   r.repairs);
    };
    write_json("BENCH_A8.json",
               "{\"ablation\": \"A8\", " + variant_json("repl1", off) + ", " +
                   variant_json("repl1_cached", on) + ", " +
                   variant_json("repl0", bare) + "}");
  }

  // --- A9: heat-driven shard split under Zipfian skew (DESIGN.md §5g) ------
  {
    // Clients on node 0; 3 partitions hosted on nodes 1-3. Every op is a
    // Zipfian (theta=0.99) 16 KB upsert of a partition-0 key, so static
    // placement funnels the whole stream through node 1's single ingress
    // DMA lane — the serializing resource at 40GbE (DESIGN.md §2). A
    // mid-run split() peels the hot slots off to the coldest partition,
    // splitting the stream across two hosts. The same deterministic stream
    // runs cache-off and cache-on: the migration window must lose zero ops
    // and both variants must converge byte-for-byte.
    constexpr std::uint64_t kKeys = 256;
    constexpr std::uint64_t kValueBytes = 16 * 1024;
    // The hot host only saturates when client demand exceeds its ingress
    // capacity (~wire_time(16KB) per op); the scaled-down default client
    // count sits right at the knee, so give A9 a floor.
    const int a9_clients = std::max(clients, 24);
    struct A9Run {
      double pre_ms = 0, post_ms = 0;
      std::int64_t failed = 0;
      std::size_t moved_keys = 0;
      std::vector<std::uint64_t> state;
    };
    auto run_variant = [&](bool cached) {
      A9Run r;
      Context ctx({.num_nodes = 4, .procs_per_node = a9_clients});
      unordered_map<std::uint64_t, Blob> m(ctx, [&] {
        core::ContainerOptions o;
        o.num_partitions = 3;
        o.first_node = 1;  // node 0 hosts only clients
        o.rebalance.enabled = true;
        o.rebalance.slots_per_partition = 8;
        if (cached) {
          o.cache.mode = cache::CacheMode::kInvalidate;
          o.cache.ttl_ns = 10 * sim::kMillisecond;
          o.cache.capacity = kKeys;
        }
        return o;
      }());
      std::vector<std::uint64_t> keys;
      for (std::uint64_t k = 0; keys.size() < kKeys; ++k) {
        if (m.partition_of(k) == 0) keys.push_back(k);
      }
      // Upsert payloads depend only on the key and phase, so the final
      // state is deterministic regardless of rank interleaving.
      auto blob_of = [&](std::uint64_t k, std::uint64_t salt) {
        return Blob{kValueBytes + (k & 7) + salt};
      };
      ctx.run_one(0, [&](sim::Actor&) {
        for (const auto k : keys) (void)m.upsert(k, blob_of(k, 0));
      });
      std::atomic<std::int64_t> failed{0};
      auto phase = [&](std::uint64_t salt) {
        ctx.reset_measurement();
        ctx.run([&](sim::Actor& self) {
          if (self.node() != 0) return;
          Rng rng(static_cast<std::uint64_t>(self.rank()) * 977 + salt);
          ZipfGen zipf(kKeys, 0.99, rng);
          for (std::int64_t i = 0; i < ops; ++i) {
            const auto k = keys[zipf.next_scrambled()];
            try {
              (void)m.upsert(k, blob_of(k, salt));
            } catch (const HclError&) {
              failed.fetch_add(1, std::memory_order_relaxed);
            }
          }
        });
        return ctx.elapsed_seconds() * 1e3;
      };
      r.pre_ms = phase(1);
      ctx.run_one(0, [&](sim::Actor&) { r.moved_keys = m.split(0); });
      r.post_ms = phase(2);
      r.failed = failed.load(std::memory_order_relaxed);
      ctx.run_one(0, [&](sim::Actor&) {
        for (const auto k : keys) {
          Blob v;
          (void)m.find(k, &v);
          r.state.push_back(v.nominal);
        }
      });
      return r;
    };
    const A9Run plain = run_variant(false);
    const A9Run cached = run_variant(true);
    const bool converged = plain.state == cached.state;
    const double speedup = plain.pre_ms / plain.post_ms;
    const double total_ops = static_cast<double>(ops) * a9_clients;
    std::printf("A9 heat-driven split      : static %.3f ms vs post-split %.3f ms -> %.2fx "
                "(%zu keys migrated, %" PRId64 " failed ops, cache twin %s)\n",
                plain.pre_ms, plain.post_ms, speedup, plain.moved_keys,
                plain.failed + cached.failed,
                converged ? "converged" : "DIVERGED");
    write_json(
        "BENCH_A9.json",
        jsonf("{\"ablation\": \"A9\", \"pre_split_ms\": %.3f, "
              "\"post_split_ms\": %.3f, \"speedup\": %.2f, "
              "\"pre_ops_per_sec\": %.0f, \"post_ops_per_sec\": %.0f, "
              "\"moved_keys\": %zu, \"failed_ops\": %" PRId64 ", "
              "\"cached_speedup\": %.2f, \"cache_converged\": %s}",
              plain.pre_ms, plain.post_ms, speedup,
              total_ops / (plain.pre_ms / 1e3),
              total_ops / (plain.post_ms / 1e3), plain.moved_keys,
              plain.failed + cached.failed,
              cached.pre_ms / cached.post_ms, converged ? "true" : "false"));
  }

  // --- A10: cross-container transactions (DESIGN.md §5h) ------------------
  // Queue→map hand-off under concurrency, two ways: the epoch-validated txn
  // transfer (atomic: the popped item can never be lost or duplicated) vs
  // the lock-free-retry baseline (plain pop then plain insert — two
  // independent linearization points, the idiom transactions replace). The
  // txn variant must conserve every item (atomicity_violations == 0), and
  // its coordinator counters must reconcile exactly against the per-NIC
  // txn_* counters and the kTxn span counts on the tracing plane.
  {
    constexpr int kA10Nodes = 2;
    constexpr int kA10Procs = 4;
    const std::int64_t per_rank = std::max<std::int64_t>(8, ops / 16);
    const std::int64_t items = per_rank * kA10Nodes * kA10Procs;

    Context::Config cfg;
    cfg.num_nodes = kA10Nodes;
    cfg.procs_per_node = kA10Procs;
    cfg.trace.enabled = true;  // exact kTxn span counts for reconciliation
    cfg.trace.path.clear();
    Context ctx(cfg);
    auto val_of = [](std::uint64_t item) { return item * 3 + 1; };

    // Baseline: pop and insert as two plain ops. Fast, but nothing ties the
    // two together — a failure between them strands the item.
    queue<std::uint64_t> base_q(ctx);
    unordered_map<std::uint64_t, std::uint64_t> base_m(
        ctx, {.num_partitions = kA10Nodes});
    ctx.run_one(0, [&](sim::Actor&) {
      for (std::int64_t i = 0; i < items; ++i) {
        (void)base_q.push(static_cast<std::uint64_t>(i));
      }
    });
    ctx.reset_measurement();
    ctx.run([&](sim::Actor&) {
      std::uint64_t item = 0;
      while (base_q.pop(&item)) (void)base_m.insert(item, val_of(item));
    });
    const double baseline_ms = ctx.elapsed_seconds() * 1e3;
    const auto baseline_moved = static_cast<std::int64_t>(base_m.size());

    // Transactional: one transfer per item, every pop+put pair atomic. The
    // single queue intent slot makes rival coordinators abort-and-retry, so
    // the retry counter sees real contention.
    queue<std::uint64_t> txn_q(ctx);
    unordered_map<std::uint64_t, std::uint64_t> txn_m(
        ctx, {.num_partitions = kA10Nodes});
    txn::TxnCoordinator coord(ctx);
    ctx.run_one(0, [&](sim::Actor&) {
      for (std::int64_t i = 0; i < items; ++i) {
        (void)txn_q.push(static_cast<std::uint64_t>(i));
      }
    });
    ctx.reset_measurement();
    ctx.run([&](sim::Actor& self) {
      for (;;) {
        bool moved = false;
        const Status st = coord.transfer(
            self, txn_q, txn_m,
            [&](std::uint64_t item) {
              return std::pair<std::uint64_t, std::uint64_t>(item,
                                                             val_of(item));
            },
            &moved);
        if (st.ok() && !moved) break;  // committed no-op: queue drained
      }
    });
    const double txn_ms = ctx.elapsed_seconds() * 1e3;
    const auto txn_moved = static_cast<std::int64_t>(txn_m.size());

    // Atomicity: every item is in exactly one place, none lost, none doubled.
    std::int64_t violations = std::llabs(txn_moved - items);
    ctx.run_one(0, [&](sim::Actor&) {
      if (!txn_q.empty()) ++violations;
      for (std::int64_t i = 0; i < items; ++i) {
        std::uint64_t v = 0;
        if (!txn_m.find(static_cast<std::uint64_t>(i), &v) ||
            v != val_of(static_cast<std::uint64_t>(i))) {
          ++violations;
        }
      }
    });

    // Observability reconciliation: coordinator totals == per-NIC counter
    // sums == kTxn span counts (txn.h records exactly one span and one
    // commit-or-abort count per attempt).
    std::int64_t nic_commits = 0, nic_aborts = 0, txn_spans = 0;
    for (int n = 0; n < kA10Nodes; ++n) {
      nic_commits += ctx.fabric().nic(n).counters().txn_commits.load();
      nic_aborts += ctx.fabric().nic(n).counters().txn_aborts.load();
      txn_spans += ctx.tracer().span_count(n, obs::SpanKind::kTxn);
    }
    const bool counters_reconcile =
        nic_commits == coord.commits() && nic_aborts == coord.aborts() &&
        txn_spans == coord.commits() + coord.aborts();

    const double overhead = txn_ms / baseline_ms;
    std::printf(
        "A10 txn transfer          : baseline %.3f ms vs txn %.3f ms -> %.2fx "
        "overhead (%" PRId64 " items, %" PRId64 " violations, %lld commits, "
        "%lld aborts, %lld retries, counters %s)\n",
        baseline_ms, txn_ms, overhead, items, violations,
        static_cast<long long>(coord.commits()),
        static_cast<long long>(coord.aborts()),
        static_cast<long long>(coord.retries()),
        counters_reconcile ? "reconcile" : "DIVERGED");
    write_json(
        "BENCH_A10.json",
        jsonf("{\"ablation\": \"A10\", \"baseline_ms\": %.3f, "
              "\"txn_ms\": %.3f, \"txn_overhead\": %.2f, "
              "\"items\": %" PRId64 ", \"baseline_moved\": %" PRId64 ", "
              "\"txn_moved\": %" PRId64 ", "
              "\"atomicity_violations\": %" PRId64 ", "
              "\"commits\": %lld, \"aborts\": %lld, \"retries\": %lld, "
              "\"txn_spans\": %lld, \"counters_reconcile\": %s}",
              baseline_ms, txn_ms, overhead, items, baseline_moved, txn_moved,
              violations, static_cast<long long>(coord.commits()),
              static_cast<long long>(coord.aborts()),
              static_cast<long long>(coord.retries()),
              static_cast<long long>(txn_spans),
              counters_reconcile ? "true" : "false"));
  }

  // --- A11: shared-memory transport tier (DESIGN.md §5i) ------------------
  // Per-op FLOOR comparison on engine-level echo handlers (no container
  // handler base, which would drown the transport delta): clients on node 0,
  // server on node 1, pod_nodes=2 — pod-local but NOT same-node, so neither
  // the hybrid bypass nor the RPC loopback fires and the two runs differ
  // only in fabric tier. Few clients keep the single consumer lane (ring)
  // and the NIC cores (wire) out of saturation, so the elapsed/ops quotient
  // is each tier's unloaded per-op latency.
  {
    constexpr int kA11Procs = 4;
    const std::int64_t a11_ops = ops;
    std::int64_t failed[2] = {0, 0}, sends[2] = {0, 0}, fallbacks[2] = {0, 0};
    const auto run_tier = [&](bool shm_on, int slot) {
      Context::Config cfg;
      cfg.num_nodes = 2;
      cfg.procs_per_node = kA11Procs;
      cfg.shm.enabled = shm_on;
      cfg.shm.pod_nodes = 2;
      Context ctx(cfg);
      auto& engine = ctx.rpc();
      const auto echo = engine.bind<std::uint64_t, std::uint64_t>(
          [](rpc::ServerCtx&, const std::uint64_t& v) { return v; });
      std::atomic<std::int64_t> errors{0};
      ctx.reset_measurement();
      ctx.run([&](sim::Actor& self) {
        if (self.node() != 0) return;
        for (std::int64_t i = 0; i < a11_ops; ++i) {
          try {
            (void)engine.invoke<std::uint64_t>(self, 1, echo,
                                               static_cast<std::uint64_t>(i));
          } catch (const HclError&) {
            errors.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
      const auto& c = ctx.fabric().nic(1).counters();
      failed[slot] = errors.load();
      sends[slot] = c.shm_sends.load(std::memory_order_relaxed);
      fallbacks[slot] =
          c.shm_ring_full_fallbacks.load(std::memory_order_relaxed);
      // Every rank runs the same closed loop, so makespan / ops is one
      // client's sequential per-op latency.
      return ctx.elapsed_seconds() / static_cast<double>(a11_ops) * 1e6;
    };
    const double shm_us = run_tier(true, 0);
    const double rdma_us = run_tier(false, 1);
    const double ratio = rdma_us / shm_us;
    std::printf(
        "A11 shm transport tier    : ring %.3f us/op vs RDMA %.3f us/op -> "
        "%.1fx floor (%" PRId64 " shm sends, %" PRId64 " ring-full fallbacks, "
        "%" PRId64 " failed)\n",
        shm_us, rdma_us, ratio, sends[0], fallbacks[0],
        failed[0] + failed[1]);
    write_json(
        "BENCH_A11.json",
        jsonf("{\"ablation\": \"A11\", \"shm_us_per_op\": %.2f, "
              "\"rdma_us_per_op\": %.2f, \"floor_ratio\": %.2f, "
              "\"failed_ops\": %" PRId64 ", \"shm_sends\": %" PRId64 ", "
              "\"ring_full_fallbacks\": %" PRId64 "}",
              shm_us, rdma_us, ratio, failed[0] + failed[1], sends[0],
              fallbacks[0]));
  }

  std::printf("\nEach mechanism is a net win, as the paper claims (§III.C).\n");
  print_footer();
  return 0;
}
