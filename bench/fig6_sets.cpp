// Figure 6(b) — scaling the distributed sets (§IV.C).
//
// Same sweep as Fig. 6(a) with HCL::unordered_set and HCL::set (BCL has no
// set). Paper shapes: close-to-linear scaling (~620K op/s at 64 partitions);
// sets 7-14% faster than the map counterparts (no value serialized); the
// ordered set slower than the unordered one.
#include <cstdio>
#include <vector>

#include "bench_util.h"

namespace {

using namespace hcl;         // NOLINT
using namespace hcl::bench;  // NOLINT

}  // namespace

int main(int argc, char** argv) {
  Args args(argc, argv);
  const bool full = args.full();
  const int procs = static_cast<int>(args.get("--procs-per-node", full ? 40 : 4));
  const auto ops = args.get("--ops", full ? 8192 : 128);
  const std::int64_t op_bytes = args.get("--bytes", 64 << 10);
  std::vector<int> node_counts = full ? std::vector<int>{8, 16, 32, 64}
                                      : std::vector<int>{4, 8, 16, 32};

  print_header("Figure 6(b)", "set scaling with partition count");
  std::printf("procs/node=%d ops/client=%" PRId64 "\n\n", procs, ops);
  std::printf("%6s | %14s %14s | %14s | %16s\n", "nodes", "uset ins op/s",
              "set ins op/s", "uset find op/s", "uset vs umap ins");

  double last_uset_ins = 0, last_uset_find = 0, last_oset_ins = 0;
  double last_uset_vs_umap_pct = 0;
  for (int nodes : node_counts) {
    Context::Config cfg;
    cfg.num_nodes = nodes;
    cfg.procs_per_node = procs;
    cfg.model.node_memory_budget_bytes = 512LL << 30;
    Context ctx(cfg);
    const std::int64_t total_ops =
        static_cast<std::int64_t>(nodes) * procs * ops;
    auto tp = [&](double s) {
      return s > 0 ? static_cast<double>(total_ops) / s : 0;
    };

    // Map with same payload, as the 7-14%-faster comparison anchor.
    double umap_ins = 0;
    {
      unordered_map<std::uint64_t, Blob> m(ctx);
      ctx.reset_measurement();
      ctx.run([&](sim::Actor& self) {
        for (std::int64_t i = 0; i < ops; ++i) {
          m.insert(static_cast<std::uint64_t>(self.rank()) * ops + i,
                   Blob{static_cast<std::uint64_t>(op_bytes)});
        }
      });
      umap_ins = tp(ctx.elapsed_seconds());
    }

    double uset_ins = 0, uset_find = 0, oset_ins = 0;
    {
      // Set keys carry the payload (the element IS the key): same bytes as
      // the map's key+value minus the value framing.
      unordered_set<std::uint64_t> s(ctx);
      ctx.reset_measurement();
      ctx.run([&](sim::Actor& self) {
        for (std::int64_t i = 0; i < ops; ++i) {
          s.insert(static_cast<std::uint64_t>(self.rank()) * ops + i);
        }
      });
      uset_ins = tp(ctx.elapsed_seconds());
      ctx.reset_measurement();
      ctx.run([&](sim::Actor& self) {
        for (std::int64_t i = 0; i < ops; ++i) {
          s.find(static_cast<std::uint64_t>(self.rank()) * ops + i);
        }
      });
      uset_find = tp(ctx.elapsed_seconds());
    }
    {
      set<std::uint64_t> s(ctx);
      ctx.reset_measurement();
      ctx.run([&](sim::Actor& self) {
        for (std::int64_t i = 0; i < ops; ++i) {
          s.insert(static_cast<std::uint64_t>(self.rank()) * ops + i);
        }
      });
      oset_ins = tp(ctx.elapsed_seconds());
    }

    std::printf("%6d | %12.0f/s %12.0f/s | %12.0f/s | %+14.0f%%\n", nodes,
                uset_ins, oset_ins, uset_find,
                100.0 * (uset_ins / umap_ins - 1.0));
    last_uset_ins = uset_ins;
    last_uset_find = uset_find;
    last_oset_ins = oset_ins;
    last_uset_vs_umap_pct = 100.0 * (uset_ins / umap_ins - 1.0);
  }
  write_json(
      "BENCH_FIG6_SETS.json",
      jsonf("{\"bench\": \"fig6_sets\", \"nodes\": %d, \"procs_per_node\": %d, "
            "\"ops_per_client\": %" PRId64 ", "
            "\"uset_insert_ops_s\": %.0f, \"oset_insert_ops_s\": %.0f, "
            "\"uset_find_ops_s\": %.0f, \"uset_vs_umap_insert_pct\": %.2f}",
            node_counts.back(), procs, ops, last_uset_ins, last_oset_ins,
            last_uset_find, last_uset_vs_umap_pct));
  std::printf("\npaper: unordered_set ~620K op/s at 64 partitions, ~linear;\n"
              "sets 7-14%% faster than maps; ordered set slower than unordered.\n");
  print_footer();
  return 0;
}
