// Figure 5 — hybrid data access model performance (§IV.B.2).
//
// 40 clients issue 8192 writes (inserts) / reads (finds) against one target
// partition, sweeping the operation size from 4 KB to 8 MB. Two placements:
//   (a) intra-node — partition co-located with the clients. HCL bypasses the
//       RPC infrastructure entirely (direct shared memory, ~45/55 GB/s
//       plateaus); BCL still runs its CAS protocol through the runtime with
//       bounce-buffer copies (~4/12 GB/s).
//   (b) inter-node — partition remote. HCL bundles each op in one RPC and
//       tracks the wire (~4.2 GB/s); BCL pays CAS round trips plus dynamic
//       pinning for large payloads (~1.3 GB/s ceiling) and RUNS OUT OF
//       MEMORY above 1 MB (exclusive per-client buffer pools x pool depth
//       exceed the node budget).
#include <cstdio>
#include <string>
#include <vector>

#include "bcl/bcl.h"
#include "bench_util.h"

namespace {

using namespace hcl;         // NOLINT
using namespace hcl::bench;  // NOLINT

struct Cell {
  double gbps = 0;
  bool oom = false;
};

std::int64_t ops_for(std::int64_t bytes, std::int64_t base_ops) {
  // Keep total moved bytes roughly constant across the sweep.
  const std::int64_t ops = base_ops * 4096 / bytes;
  return std::max<std::int64_t>(16, std::min(base_ops, ops));
}

double gbps(double total_bytes, double seconds) {
  return seconds > 0 ? total_bytes / seconds / 1e9 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args args(argc, argv);
  const int clients = static_cast<int>(args.get("--clients", 40));
  const auto base_ops = args.get("--ops", args.full() ? 8192 : 512);

  print_header("Figure 5", "hybrid access model: intra- and inter-node bandwidth sweep");
  std::printf("clients=%d, ops scaled to constant volume from %" PRId64 " @4KB\n\n",
              clients, base_ops);

  const std::vector<std::int64_t> sizes = {
      4 << 10,  8 << 10,  16 << 10,  32 << 10,  64 << 10,  128 << 10,
      256 << 10, 512 << 10, 1 << 20, 2 << 20,  4 << 20,   8 << 20};

  // Headline means per locality (for BENCH_FIG5_HYBRID.json).
  double mean_ins[2] = {0, 0}, mean_find[2] = {0, 0};
  double mean_bcl_ins[2] = {0, 0}, mean_bcl_find[2] = {0, 0};

  // One context per locality so budgets/lanes are clean.
  for (const bool intra : {true, false}) {
    Context::Config cfg;
    cfg.num_nodes = 2;
    cfg.procs_per_node = clients;
    Context ctx(cfg);
    const sim::NodeId target = intra ? 0 : 1;

    std::printf("--- %s-node access (partition on node %d, clients on node 0) ---\n",
                intra ? "intra" : "inter", target);
    std::printf("%8s | %12s %12s | %12s %12s | %8s %8s\n", "size",
                "HCL ins GB/s", "BCL ins GB/s", "HCL find GB/s",
                "BCL find GB/s", "ins x", "find x");

    double hcl_ins_sum = 0, bcl_ins_sum = 0, hcl_find_sum = 0, bcl_find_sum = 0;
    int summed = 0;
    for (std::int64_t size : sizes) {
      const std::int64_t ops = ops_for(size, base_ops);
      const double volume =
          static_cast<double>(clients) * ops * static_cast<double>(size);

      Cell hcl_ins, hcl_find, bcl_ins, bcl_find;

      // ---- HCL ----------------------------------------------------------
      {
        core::ContainerOptions options;
        options.num_partitions = 1;
        options.first_node = target;
        unordered_map<std::uint64_t, Blob> map(ctx, options);
        ctx.reset_measurement();
        ctx.run([&](sim::Actor& self) {
          if (self.node() != 0) return;
          for (std::int64_t i = 0; i < ops; ++i) {
            map.insert(static_cast<std::uint64_t>(self.rank()) * ops + i,
                       Blob{static_cast<std::uint64_t>(size)});
          }
        });
        hcl_ins.gbps = gbps(volume, ctx.elapsed_seconds());
        ctx.reset_measurement();
        ctx.run([&](sim::Actor& self) {
          if (self.node() != 0) return;
          Blob out;
          for (std::int64_t i = 0; i < ops; ++i) {
            map.find(static_cast<std::uint64_t>(self.rank()) * ops + i, &out);
          }
        });
        hcl_find.gbps = gbps(volume, ctx.elapsed_seconds());
        // Release the budget consumed by this size before the next one.
        ctx.fabric().memory(target).release(
            ctx.fabric().memory(target).used(), 0);
      }

      // ---- BCL ----------------------------------------------------------
      {
        ctx.reset_measurement();
        core::ContainerOptions options;
        options.num_partitions = 1;
        options.first_node = target;
        try {
          bcl::HashMap<std::uint64_t, Blob> map(
              ctx, static_cast<std::size_t>(clients) * ops * 2, options,
              /*entry_bytes=*/static_cast<std::size_t>(size));
          std::atomic<bool> oom{false};
          ctx.run([&](sim::Actor& self) {
            if (self.node() != 0 || oom.load()) return;
            for (std::int64_t i = 0; i < ops; ++i) {
              Status st = map.insert(
                  static_cast<std::uint64_t>(self.rank()) * ops + i,
                  Blob{static_cast<std::uint64_t>(size)});
              if (st.code() == StatusCode::kOutOfMemory) {
                oom.store(true);
                return;
              }
            }
          });
          if (oom.load()) {
            bcl_ins.oom = bcl_find.oom = true;
          } else {
            bcl_ins.gbps = gbps(volume, ctx.elapsed_seconds());
            ctx.reset_measurement();
            ctx.run([&](sim::Actor& self) {
              if (self.node() != 0) return;
              Blob out;
              for (std::int64_t i = 0; i < ops; ++i) {
                (void)map.find(
                    static_cast<std::uint64_t>(self.rank()) * ops + i, &out);
              }
            });
            bcl_find.gbps = gbps(volume, ctx.elapsed_seconds());
          }
        } catch (const HclError& e) {
          if (e.code() != StatusCode::kOutOfMemory) throw;
          bcl_ins.oom = bcl_find.oom = true;  // static table didn't even fit
        }
        ctx.fabric().memory(0).release(ctx.fabric().memory(0).used(), 0);
        ctx.fabric().memory(1).release(ctx.fabric().memory(1).used(), 0);
      }

      char bcl_ins_s[16], bcl_find_s[16];
      if (bcl_ins.oom) {
        std::snprintf(bcl_ins_s, sizeof(bcl_ins_s), "%12s", "OOM");
        std::snprintf(bcl_find_s, sizeof(bcl_find_s), "%12s", "OOM");
      } else {
        std::snprintf(bcl_ins_s, sizeof(bcl_ins_s), "%12.2f", bcl_ins.gbps);
        std::snprintf(bcl_find_s, sizeof(bcl_find_s), "%12.2f", bcl_find.gbps);
        hcl_ins_sum += hcl_ins.gbps;
        bcl_ins_sum += bcl_ins.gbps;
        hcl_find_sum += hcl_find.gbps;
        bcl_find_sum += bcl_find.gbps;
        ++summed;
      }
      std::printf("%8s | %12.2f %s | %12.2f %s | %7.1fx %7.1fx\n",
                  human_bytes(size).c_str(), hcl_ins.gbps, bcl_ins_s,
                  hcl_find.gbps, bcl_find_s,
                  bcl_ins.oom ? 0.0 : hcl_ins.gbps / bcl_ins.gbps,
                  bcl_find.oom ? 0.0 : hcl_find.gbps / bcl_find.gbps);
    }
    if (summed > 0) {
      std::printf("mean over non-OOM sizes: HCL ins %.1f find %.1f | BCL ins %.1f find %.1f GB/s\n",
                  hcl_ins_sum / summed, hcl_find_sum / summed,
                  bcl_ins_sum / summed, bcl_find_sum / summed);
      mean_ins[intra ? 0 : 1] = hcl_ins_sum / summed;
      mean_find[intra ? 0 : 1] = hcl_find_sum / summed;
      mean_bcl_ins[intra ? 0 : 1] = bcl_ins_sum / summed;
      mean_bcl_find[intra ? 0 : 1] = bcl_find_sum / summed;
    }
    if (intra) {
      std::printf("paper: HCL plateaus ~45 (ins) / ~55 (find) GB/s from 32KB; "
                  "BCL averages ~4 / ~12 GB/s; HCL 2-20x (ins), 1.5-7.2x (find)\n\n");
    } else {
      std::printf("paper: HCL ~4-4.2 GB/s at 1MB; BCL 1.3 (ins) / 4 (find) GB/s; "
                  "HCL 3.1-12x (ins), 1.1-9x (find); BCL OOM above 1MB\n\n");
    }
  }
  write_json(
      "BENCH_FIG5_HYBRID.json",
      jsonf("{\"bench\": \"fig5_hybrid\", \"clients\": %d, "
            "\"base_ops\": %" PRId64 ", "
            "\"intra_hcl_insert_gbps\": %.2f, \"intra_hcl_find_gbps\": %.2f, "
            "\"intra_bcl_insert_gbps\": %.2f, \"intra_bcl_find_gbps\": %.2f, "
            "\"inter_hcl_insert_gbps\": %.2f, \"inter_hcl_find_gbps\": %.2f, "
            "\"inter_bcl_insert_gbps\": %.2f, \"inter_bcl_find_gbps\": %.2f}",
            clients, base_ops, mean_ins[0], mean_find[0], mean_bcl_ins[0],
            mean_bcl_find[0], mean_ins[1], mean_find[1], mean_bcl_ins[1],
            mean_bcl_find[1]));
  print_footer();
  return 0;
}
