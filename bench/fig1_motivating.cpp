// Figure 1 — the motivating test case (§II.C).
//
// 40 clients on node 0 issue 8192 insert()s of 4 KB each against a hashmap
// partition on node 1, under three designs:
//   BCL               — client-side: remote CAS (reserve) + RDMA write +
//                       remote CAS (set ready), per insert,
//   RPC with CAS      — one RPC bundles the three steps; the CASes execute
//                       locally on the target,
//   RPC lock-free     — one RPC, lock-free local insert (no CAS at all).
//
// Paper result: BCL ~1.062 s/client with ~2/3 spent in remote CAS;
// RPC+CAS ~2x faster; lock-free ~2.5x faster.
#include <atomic>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "rpc/engine.h"

namespace {

using namespace hcl;          // NOLINT
using namespace hcl::bench;   // NOLINT

struct Breakdown {
  double reserve = 0, write = 0, ready = 0, rpc = 0, local = 0;
  [[nodiscard]] double total() const { return reserve + write + ready + rpc + local; }
};

}  // namespace

int main(int argc, char** argv) {
  Args args(argc, argv);
  const int clients = static_cast<int>(args.get("--clients", 40));
  const auto ops = args.get("--ops", args.full() ? 8192 : 2048);
  const std::int64_t op_bytes = args.get("--bytes", 4096);

  print_header("Figure 1", "motivating test: client-side vs procedural insert");
  std::printf("clients=%d ops/client=%" PRId64 " op=%s\n\n", clients, ops,
              human_bytes(op_bytes).c_str());

  Context ctx({.num_nodes = 2, .procs_per_node = clients});
  auto& fabric = ctx.fabric();
  const auto& model = ctx.model();
  constexpr sim::NodeId kTarget = 1;

  // Shared "bucket state" words on the target partition.
  std::vector<std::atomic<std::uint64_t>> states(1 << 20);

  // ---- BCL: 2 remote CAS + 1 remote write per insert --------------------
  Breakdown bcl;
  {
    ctx.reset_measurement();
    std::atomic<std::int64_t> t_reserve{0}, t_write{0}, t_ready{0};
    ctx.run([&](sim::Actor& self) {
      if (self.node() != 0) return;  // clients live on node 0 only
      for (std::int64_t i = 0; i < ops; ++i) {
        auto& word = states[static_cast<std::size_t>(
            (self.rank() * ops + i) & (states.size() - 1))];
        sim::Nanos t0 = self.now();
        std::uint64_t expected = 0;
        fabric.cas64(self, kTarget, word, expected, 1);  // reserve
        sim::Nanos t1 = self.now();
        fabric.charge_put(self, kTarget, static_cast<std::size_t>(op_bytes),
                          /*registered_buffer=*/true);
        sim::Nanos t2 = self.now();
        expected = 1;
        fabric.cas64(self, kTarget, word, expected, 2);  // set ready
        sim::Nanos t3 = self.now();
        t_reserve.fetch_add(t1 - t0, std::memory_order_relaxed);
        t_write.fetch_add(t2 - t1, std::memory_order_relaxed);
        t_ready.fetch_add(t3 - t2, std::memory_order_relaxed);
      }
    });
    const double per_client = static_cast<double>(clients);
    bcl.reserve = sim::to_seconds(t_reserve.load()) / per_client;
    bcl.write = sim::to_seconds(t_write.load()) / per_client;
    bcl.ready = sim::to_seconds(t_ready.load()) / per_client;
    for (auto& s : states) s.store(0, std::memory_order_relaxed);
  }

  // ---- RPC with CAS: one invocation, CASes local on the target ----------
  Breakdown rpc_cas;
  {
    ctx.reset_measurement();
    rpc::Engine& engine = ctx.rpc();
    std::atomic<std::int64_t> local_ns{0};
    const auto insert_cas = engine.bind<bool, Blob>(
        [&](rpc::ServerCtx& sctx, const Blob& payload) {
          // reserve CAS + data write + ready CAS, all node-local.
          const sim::Nanos s0 = sctx.start;
          sim::Nanos t = fabric.local_cas(sctx.node, s0);
          t = fabric.local_write(sctx.node, t + model.mem_insert_base_ns,
                                 static_cast<std::int64_t>(payload.nominal));
          t = fabric.local_cas(sctx.node, t);
          sctx.finish = t;
          local_ns.fetch_add(t - s0, std::memory_order_relaxed);
          return true;
        });
    ctx.run([&](sim::Actor& self) {
      if (self.node() != 0) return;
      for (std::int64_t i = 0; i < ops; ++i) {
        (void)engine.invoke<bool>(self, kTarget, insert_cas,
                                  Blob{static_cast<std::uint64_t>(op_bytes)});
      }
    });
    const double per_client = static_cast<double>(clients);
    double mean_total = 0;
    for (int r = 0; r < clients; ++r) {
      mean_total += sim::to_seconds(ctx.cluster().actor(r).now());
    }
    mean_total /= per_client;
    rpc_cas.local = sim::to_seconds(local_ns.load()) / per_client;
    rpc_cas.rpc = mean_total - rpc_cas.local;
    engine.unbind(insert_cas);
  }

  // ---- RPC lock-free: one invocation, no CAS ----------------------------
  Breakdown rpc_lf;
  {
    ctx.reset_measurement();
    rpc::Engine& engine = ctx.rpc();
    std::atomic<std::int64_t> local_ns{0};
    const auto insert_lf = engine.bind<bool, Blob>(
        [&](rpc::ServerCtx& sctx, const Blob& payload) {
          const sim::Nanos s0 = sctx.start;
          sctx.finish =
              fabric.local_write(sctx.node, s0 + model.mem_insert_base_ns,
                                 static_cast<std::int64_t>(payload.nominal));
          local_ns.fetch_add(sctx.finish - s0, std::memory_order_relaxed);
          return true;
        });
    ctx.run([&](sim::Actor& self) {
      if (self.node() != 0) return;
      for (std::int64_t i = 0; i < ops; ++i) {
        (void)engine.invoke<bool>(self, kTarget, insert_lf,
                                  Blob{static_cast<std::uint64_t>(op_bytes)});
      }
    });
    const double per_client = static_cast<double>(clients);
    double mean_total = 0;
    for (int r = 0; r < clients; ++r) {
      mean_total += sim::to_seconds(ctx.cluster().actor(r).now());
    }
    mean_total /= per_client;
    rpc_lf.local = sim::to_seconds(local_ns.load()) / per_client;
    rpc_lf.rpc = mean_total - rpc_lf.local;
    engine.unbind(insert_lf);
  }

  // ---- report ------------------------------------------------------------
  const double scale = args.full() ? 1.0 : 8192.0 / static_cast<double>(ops);
  std::printf("avg seconds per client (x%.0f op scale -> paper-equivalent)\n",
              scale);
  std::printf("%-18s %10s %10s %10s %10s %10s %10s\n", "approach", "reserve",
              "insert", "ready", "rpc-call", "local", "TOTAL");
  std::printf("%-18s %10.3f %10.3f %10.3f %10s %10s %10.3f\n", "BCL",
              bcl.reserve * scale, bcl.write * scale, bcl.ready * scale, "-",
              "-", bcl.total() * scale);
  std::printf("%-18s %10s %10s %10s %10.3f %10.3f %10.3f\n", "RPC with CAS",
              "-", "-", "-", rpc_cas.rpc * scale, rpc_cas.local * scale,
              rpc_cas.total() * scale);
  std::printf("%-18s %10s %10s %10s %10.3f %10.3f %10.3f\n", "RPC lock-free",
              "-", "-", "-", rpc_lf.rpc * scale, rpc_lf.local * scale,
              rpc_lf.total() * scale);
  std::printf("\nspeedup vs BCL:  RPC with CAS %.2fx   RPC lock-free %.2fx\n",
              bcl.total() / rpc_cas.total(), bcl.total() / rpc_lf.total());
  std::printf("paper:           RPC with CAS ~2x     RPC lock-free ~2.5x\n");
  write_json(
      "BENCH_FIG1_MOTIVATING.json",
      jsonf("{\"bench\": \"fig1_motivating\", \"clients\": %d, "
            "\"ops_per_client\": %" PRId64 ", \"op_bytes\": %" PRId64 ", "
            "\"bcl_client_s\": %.4f, \"rpc_cas_client_s\": %.4f, "
            "\"rpc_lockfree_client_s\": %.4f, "
            "\"rpc_cas_speedup_x\": %.2f, \"rpc_lockfree_speedup_x\": %.2f}",
            clients, ops, op_bytes, bcl.total() * scale,
            rpc_cas.total() * scale, rpc_lf.total() * scale,
            bcl.total() / rpc_cas.total(), bcl.total() / rpc_lf.total()));
  print_footer();
  return 0;
}
