// Figure 6(c) — scaling the single-partition queues with client count (§IV.C).
//
// One queue partition hosted on node 0; the number of clients issuing
// push/pop sweeps up (320 -> 2560 in the paper). Paper shapes: throughput
// rises, peaks once the target is saturated, then plateaus; the priority
// queue ~30% slower than the FIFO queue (log N push); BCL's circular queue
// caps at ~35K push / ~43K pop — far below HCL.
#include <cstdio>
#include <vector>

#include "bcl/bcl.h"
#include "bench_util.h"

namespace {

using namespace hcl;         // NOLINT
using namespace hcl::bench;  // NOLINT

}  // namespace

int main(int argc, char** argv) {
  Args args(argc, argv);
  const bool full = args.full();
  const auto ops = args.get("--ops", full ? 8192 : 64);
  const std::int64_t op_bytes = args.get("--bytes", 64);
  std::vector<int> client_counts = full ? std::vector<int>{320, 640, 1280, 2560}
                                        : std::vector<int>{32, 64, 128, 256, 512};

  print_header("Figure 6(c)", "queue scaling with client count (single partition)");
  std::printf("ops/client=%" PRId64 " element=%s, queue hosted on node 0\n\n", ops,
              human_bytes(op_bytes).c_str());
  std::printf("%8s | %12s %12s %12s | %12s %12s\n", "clients", "FIFO push/s",
              "PQ push/s", "BCL push/s", "FIFO pop/s", "BCL pop/s");

  double last_fifo_push = 0, last_fifo_pop = 0, last_pq_push = 0;
  double last_bcl_push = 0, last_bcl_pop = 0;
  for (int clients : client_counts) {
    // Topology: clients spread over nodes with 8 per node (so most are
    // remote from the queue's host, as in the paper's 64-node runs).
    const int procs = 8;
    const int nodes = std::max(2, (clients + procs - 1) / procs);
    Context::Config cfg;
    cfg.num_nodes = nodes;
    cfg.procs_per_node = procs;
    cfg.model.node_memory_budget_bytes = 512LL << 30;
    Context ctx(cfg);
    const std::int64_t total_ops = static_cast<std::int64_t>(clients) * ops;
    auto tp = [&](double s) {
      return s > 0 ? static_cast<double>(total_ops) / s : 0;
    };
    auto is_client = [&](sim::Actor& self) { return self.rank() < clients; };

    double fifo_push = 0, fifo_pop = 0, pq_push = 0, bcl_push = 0, bcl_pop = 0;
    {
      queue<Blob> q(ctx);
      ctx.reset_measurement();
      ctx.run([&](sim::Actor& self) {
        if (!is_client(self)) return;
        for (std::int64_t i = 0; i < ops; ++i) {
          q.push(Blob{static_cast<std::uint64_t>(op_bytes)});
        }
      });
      fifo_push = tp(ctx.elapsed_seconds());
      ctx.reset_measurement();
      ctx.run([&](sim::Actor& self) {
        if (!is_client(self)) return;
        Blob out;
        for (std::int64_t i = 0; i < ops; ++i) q.pop(&out);
      });
      fifo_pop = tp(ctx.elapsed_seconds());
    }
    {
      priority_queue<std::uint64_t> pq(ctx);
      ctx.reset_measurement();
      ctx.run([&](sim::Actor& self) {
        if (!is_client(self)) return;
        for (std::int64_t i = 0; i < ops; ++i) {
          pq.push(static_cast<std::uint64_t>(self.rank()) * ops + i);
        }
      });
      pq_push = tp(ctx.elapsed_seconds());
    }
    {
      bcl::CircularQueue<Blob> q(ctx, static_cast<std::size_t>(total_ops) * 2);
      ctx.reset_measurement();
      ctx.run([&](sim::Actor& self) {
        if (!is_client(self)) return;
        for (std::int64_t i = 0; i < ops; ++i) {
          throw_if_error(q.push(Blob{static_cast<std::uint64_t>(op_bytes)}));
        }
      });
      bcl_push = tp(ctx.elapsed_seconds());
      ctx.reset_measurement();
      ctx.run([&](sim::Actor& self) {
        if (!is_client(self)) return;
        Blob out;
        for (std::int64_t i = 0; i < ops; ++i) (void)q.pop(&out);
      });
      bcl_pop = tp(ctx.elapsed_seconds());
    }

    std::printf("%8d | %10.0f/s %10.0f/s %10.0f/s | %10.0f/s %10.0f/s  (PQ %-3.0f%% of FIFO, HCL/BCL %.1fx)\n",
                clients, fifo_push, pq_push, bcl_push, fifo_pop, bcl_pop,
                100.0 * pq_push / fifo_push, fifo_push / bcl_push);
    last_fifo_push = fifo_push;
    last_fifo_pop = fifo_pop;
    last_pq_push = pq_push;
    last_bcl_push = bcl_push;
    last_bcl_pop = bcl_pop;
  }
  write_json(
      "BENCH_FIG6_QUEUES.json",
      jsonf("{\"bench\": \"fig6_queues\", \"clients\": %d, "
            "\"ops_per_client\": %" PRId64 ", "
            "\"fifo_push_ops_s\": %.0f, \"pq_push_ops_s\": %.0f, "
            "\"bcl_push_ops_s\": %.0f, \"fifo_pop_ops_s\": %.0f, "
            "\"bcl_pop_ops_s\": %.0f, "
            "\"pq_vs_fifo_pct\": %.2f, \"fifo_vs_bcl_x\": %.2f}",
            client_counts.back(), ops, last_fifo_push, last_pq_push,
            last_bcl_push, last_fifo_pop, last_bcl_pop,
            100.0 * last_pq_push / last_fifo_push,
            last_fifo_push / last_bcl_push));
  std::printf("\npaper: throughput peaks once the host NIC saturates, then plateaus;\n"
              "priority queue ~30%% slower than FIFO; BCL caps at ~35K push / 43K pop.\n");
  print_footer();
  return 0;
}
