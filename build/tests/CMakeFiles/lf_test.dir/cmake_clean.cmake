file(REMOVE_RECURSE
  "CMakeFiles/lf_test.dir/lf/cuckoo_map_test.cpp.o"
  "CMakeFiles/lf_test.dir/lf/cuckoo_map_test.cpp.o.d"
  "CMakeFiles/lf_test.dir/lf/ebr_test.cpp.o"
  "CMakeFiles/lf_test.dir/lf/ebr_test.cpp.o.d"
  "CMakeFiles/lf_test.dir/lf/ms_queue_test.cpp.o"
  "CMakeFiles/lf_test.dir/lf/ms_queue_test.cpp.o.d"
  "CMakeFiles/lf_test.dir/lf/priority_queue_test.cpp.o"
  "CMakeFiles/lf_test.dir/lf/priority_queue_test.cpp.o.d"
  "CMakeFiles/lf_test.dir/lf/skiplist_map_test.cpp.o"
  "CMakeFiles/lf_test.dir/lf/skiplist_map_test.cpp.o.d"
  "lf_test"
  "lf_test.pdb"
  "lf_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
