
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/lf/cuckoo_map_test.cpp" "tests/CMakeFiles/lf_test.dir/lf/cuckoo_map_test.cpp.o" "gcc" "tests/CMakeFiles/lf_test.dir/lf/cuckoo_map_test.cpp.o.d"
  "/root/repo/tests/lf/ebr_test.cpp" "tests/CMakeFiles/lf_test.dir/lf/ebr_test.cpp.o" "gcc" "tests/CMakeFiles/lf_test.dir/lf/ebr_test.cpp.o.d"
  "/root/repo/tests/lf/ms_queue_test.cpp" "tests/CMakeFiles/lf_test.dir/lf/ms_queue_test.cpp.o" "gcc" "tests/CMakeFiles/lf_test.dir/lf/ms_queue_test.cpp.o.d"
  "/root/repo/tests/lf/priority_queue_test.cpp" "tests/CMakeFiles/lf_test.dir/lf/priority_queue_test.cpp.o" "gcc" "tests/CMakeFiles/lf_test.dir/lf/priority_queue_test.cpp.o.d"
  "/root/repo/tests/lf/skiplist_map_test.cpp" "tests/CMakeFiles/lf_test.dir/lf/skiplist_map_test.cpp.o" "gcc" "tests/CMakeFiles/lf_test.dir/lf/skiplist_map_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
