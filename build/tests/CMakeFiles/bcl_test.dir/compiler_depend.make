# Empty compiler generated dependencies file for bcl_test.
# This may be replaced when dependencies are built.
