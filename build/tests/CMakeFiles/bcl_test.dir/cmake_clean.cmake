file(REMOVE_RECURSE
  "CMakeFiles/bcl_test.dir/bcl/bcl_test.cpp.o"
  "CMakeFiles/bcl_test.dir/bcl/bcl_test.cpp.o.d"
  "bcl_test"
  "bcl_test.pdb"
  "bcl_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bcl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
