# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/memory_test[1]_include.cmake")
include("/root/repo/build/tests/fabric_test[1]_include.cmake")
include("/root/repo/build/tests/serial_test[1]_include.cmake")
include("/root/repo/build/tests/rpc_test[1]_include.cmake")
include("/root/repo/build/tests/lf_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/bcl_test[1]_include.cmake")
include("/root/repo/build/tests/apps_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
