# Empty compiler generated dependencies file for genome_pipeline.
# This may be replaced when dependencies are built.
