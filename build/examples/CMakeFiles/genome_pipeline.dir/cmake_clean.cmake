file(REMOVE_RECURSE
  "CMakeFiles/genome_pipeline.dir/genome_pipeline.cpp.o"
  "CMakeFiles/genome_pipeline.dir/genome_pipeline.cpp.o.d"
  "genome_pipeline"
  "genome_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/genome_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
