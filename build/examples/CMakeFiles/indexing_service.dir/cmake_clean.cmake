file(REMOVE_RECURSE
  "CMakeFiles/indexing_service.dir/indexing_service.cpp.o"
  "CMakeFiles/indexing_service.dir/indexing_service.cpp.o.d"
  "indexing_service"
  "indexing_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/indexing_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
