# Empty compiler generated dependencies file for indexing_service.
# This may be replaced when dependencies are built.
