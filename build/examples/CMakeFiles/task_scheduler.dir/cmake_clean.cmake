file(REMOVE_RECURSE
  "CMakeFiles/task_scheduler.dir/task_scheduler.cpp.o"
  "CMakeFiles/task_scheduler.dir/task_scheduler.cpp.o.d"
  "task_scheduler"
  "task_scheduler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/task_scheduler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
