file(REMOVE_RECURSE
  "CMakeFiles/fig6_queues.dir/fig6_queues.cpp.o"
  "CMakeFiles/fig6_queues.dir/fig6_queues.cpp.o.d"
  "fig6_queues"
  "fig6_queues.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_queues.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
