# Empty compiler generated dependencies file for fig6_queues.
# This may be replaced when dependencies are built.
