# Empty compiler generated dependencies file for fig7_contig.
# This may be replaced when dependencies are built.
