file(REMOVE_RECURSE
  "CMakeFiles/fig7_contig.dir/fig7_contig.cpp.o"
  "CMakeFiles/fig7_contig.dir/fig7_contig.cpp.o.d"
  "fig7_contig"
  "fig7_contig.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_contig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
