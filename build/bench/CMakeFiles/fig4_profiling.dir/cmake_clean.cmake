file(REMOVE_RECURSE
  "CMakeFiles/fig4_profiling.dir/fig4_profiling.cpp.o"
  "CMakeFiles/fig4_profiling.dir/fig4_profiling.cpp.o.d"
  "fig4_profiling"
  "fig4_profiling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_profiling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
