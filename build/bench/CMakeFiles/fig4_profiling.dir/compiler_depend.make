# Empty compiler generated dependencies file for fig4_profiling.
# This may be replaced when dependencies are built.
