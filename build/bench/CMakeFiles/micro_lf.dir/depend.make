# Empty dependencies file for micro_lf.
# This may be replaced when dependencies are built.
