file(REMOVE_RECURSE
  "CMakeFiles/micro_lf.dir/micro_lf.cpp.o"
  "CMakeFiles/micro_lf.dir/micro_lf.cpp.o.d"
  "micro_lf"
  "micro_lf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_lf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
