# Empty compiler generated dependencies file for fig5_hybrid.
# This may be replaced when dependencies are built.
