file(REMOVE_RECURSE
  "CMakeFiles/fig5_hybrid.dir/fig5_hybrid.cpp.o"
  "CMakeFiles/fig5_hybrid.dir/fig5_hybrid.cpp.o.d"
  "fig5_hybrid"
  "fig5_hybrid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_hybrid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
