# Empty compiler generated dependencies file for fig7_isx.
# This may be replaced when dependencies are built.
