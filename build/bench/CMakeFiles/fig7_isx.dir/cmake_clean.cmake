file(REMOVE_RECURSE
  "CMakeFiles/fig7_isx.dir/fig7_isx.cpp.o"
  "CMakeFiles/fig7_isx.dir/fig7_isx.cpp.o.d"
  "fig7_isx"
  "fig7_isx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_isx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
