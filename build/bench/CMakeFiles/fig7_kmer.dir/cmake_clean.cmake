file(REMOVE_RECURSE
  "CMakeFiles/fig7_kmer.dir/fig7_kmer.cpp.o"
  "CMakeFiles/fig7_kmer.dir/fig7_kmer.cpp.o.d"
  "fig7_kmer"
  "fig7_kmer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_kmer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
