# Empty dependencies file for fig7_kmer.
# This may be replaced when dependencies are built.
