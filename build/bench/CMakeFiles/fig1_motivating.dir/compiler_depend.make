# Empty compiler generated dependencies file for fig1_motivating.
# This may be replaced when dependencies are built.
