file(REMOVE_RECURSE
  "CMakeFiles/fig1_motivating.dir/fig1_motivating.cpp.o"
  "CMakeFiles/fig1_motivating.dir/fig1_motivating.cpp.o.d"
  "fig1_motivating"
  "fig1_motivating.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_motivating.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
