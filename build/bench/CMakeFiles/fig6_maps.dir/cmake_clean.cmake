file(REMOVE_RECURSE
  "CMakeFiles/fig6_maps.dir/fig6_maps.cpp.o"
  "CMakeFiles/fig6_maps.dir/fig6_maps.cpp.o.d"
  "fig6_maps"
  "fig6_maps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_maps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
