# Empty compiler generated dependencies file for fig6_maps.
# This may be replaced when dependencies are built.
